// Calibration of the substrate models against the paper's measurements.
//
// All CPU costs in the system are expressed for the reference machine —
// the DETER testbed's 2.8 GHz Xeon ("pc2800") — and scaled by each
// node's speed factor.  The constants here are chosen so the *published*
// micro-benchmarks come out in the right place:
//
//  * Click forwarder cost: the paper's strace analysis found poll +
//    recvfrom + sendto + 3x gettimeofday at ~5 us/call per forwarded
//    packet.  We charge 25 us fixed + 13 ns/byte (copies, checksum,
//    classification).  A 1430-byte-payload data packet costs ~44 us and
//    a bare ACK ~26 us, making the 3-node DETER TCP test CPU-bound near
//    ~200 Mb/s at 100% CPU (Table 2: 195 Mb/s) while in-kernel
//    forwarding rides the Gig-E wire at ~940 Mb/s and ~48% CPU.
//  * P-III speed factors: the PlanetLab nodes are 1.4 GHz (Chicago,
//    Washington) and 1.267 GHz (New York) Pentium-IIIs.  P-III IPC is
//    considerably better than the P4 Xeon's, so the effective factors
//    are ~1.35 and ~1.5, not the raw clock ratio.  This puts the New
//    York forwarder's capacity near ~135 Mb/s, which — shared with a 25%
//    reservation plus spare capacity, behind a 100 Mb/s access NIC —
//    lands IIAS-on-PL-VINI throughput at the high 80s (Table 4: 86.2).
//  * PlanetLab contention: ~4 other runnable slices on average (spread
//    1.5), 6 ms timeslices.  Fair share is then ~20% — the CPU level
//    the paper reports for the un-reserved run — and descheduling gaps
//    average ~24 ms, which is what overflows Click's ~220 KB socket
//    buffer at CBR rates above ~25 Mb/s (Figure 6a) but not below.
#pragma once

#include "click/element.h"
#include "cpu/scheduler.h"
#include "tcpip/host_stack.h"

namespace vini::topo {

/// Click user-space forwarding cost (reference machine).
inline click::ClickCostModel clickCosts() {
  click::ClickCostModel costs;
  costs.per_packet_fixed = 25 * sim::kMicrosecond;
  costs.per_byte_ns = 13.0;
  return costs;
}

/// Click's UDP socket receive buffer (SO_RCVBUF as IIAS configures it).
inline constexpr std::size_t kIiasSocketBuffer = 220 * 1024;

/// Mean number of other runnable slices on a production PlanetLab node,
/// and its spread (Section 5.1.2's environment).
inline constexpr double kPlanetLabContention = 4.0;
inline constexpr double kPlanetLabContentionSpread = 1.5;

/// A dedicated DETER pc2800 (2.8 GHz Xeon): the reference machine.
inline cpu::SchedulerConfig deterCpu(std::uint64_t seed = 101) {
  cpu::SchedulerConfig config;
  config.speed_factor = 1.0;
  config.contention_mean = 0.0;
  config.seed = seed;
  return config;
}

/// A shared PlanetLab node.  `speed_factor` scales reference costs
/// (1.35 for the 1.4 GHz P-IIIs, 1.5 for the 1.267 GHz New York node).
inline cpu::SchedulerConfig planetLabCpu(double speed_factor,
                                         std::uint64_t seed,
                                         double contention = kPlanetLabContention) {
  cpu::SchedulerConfig config;
  config.speed_factor = speed_factor;
  config.contention_mean = contention;
  config.contention_stddev = kPlanetLabContentionSpread;
  config.wakeup_delay_per_slice = 80 * sim::kMicrosecond;
  config.stall_probability = 0.006;
  config.seed = seed;
  return config;
}

inline constexpr double kPiii1400Factor = 1.35;
inline constexpr double kPiii1267Factor = 1.5;

/// Host model for DETER machines: Gig-E NICs, fast kernels.
inline tcpip::HostConfig deterHost() {
  tcpip::HostConfig config;
  config.nic_bps = 1e9;
  return config;
}

/// Host model for PlanetLab nodes: 100 Mb/s access into the Abilene PoP.
inline tcpip::HostConfig planetLabHost() {
  tcpip::HostConfig config;
  config.nic_bps = 100e6;
  // Production hosts see occasional receive-path stalls even on a quiet
  // path (Table 5's Network row tops out at 28.2 ms over a 24.4 ms min).
  config.rx_spike_probability = 0.0004;
  return config;
}

}  // namespace vini::topo
