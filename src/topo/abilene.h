// The Abilene backbone (Figure 7) and the DETER microbenchmark setup
// (Figure 3).
//
// Abilene: the eleven PoPs and fourteen backbone links of the 2006
// Internet2 network, with one-way latencies approximating the real
// fiber paths and IGP weights proportional to latency (as Abilene
// configured them).  The PlanetLab node co-located at each PoP is
// merged with the PoP in the physical model; its ~100 Mb/s access NIC
// and P-III CPU live in the host/CPU configs.
//
// Checkable against the paper: Washington -> Seattle rides
// DC-NY-Chicago-Indianapolis-KansasCity-Denver-Seattle (RTT ~70 ms plus
// overlay overhead: the paper measures 76 ms); with Denver-KansasCity
// failed, it falls over to the southern route through Atlanta, Houston,
// Los Angeles and Sunnyvale (paper: 93 ms).
#pragma once

#include <string>
#include <vector>

#include "core/embedder.h"
#include "phys/network.h"
#include "tcpip/stack_manager.h"

namespace vini::topo {

struct AbileneLinkSpec {
  const char* a;
  const char* b;
  double one_way_ms;
  std::uint32_t igp_weight;
};

/// The eleven PoP names.
const std::vector<std::string>& abilenePopNames();

/// The fourteen backbone links.
const std::vector<AbileneLinkSpec>& abileneLinks();

struct AbileneOptions {
  double backbone_bps = 2.5e9;
  /// Seed for the physical network RNG.
  std::uint64_t seed = 20060911;
  /// Configure each PoP's co-located PlanetLab node CPU (P-III, shared)
  /// and 100 Mb/s host NIC.  Disable for an idealized substrate.
  bool planetlab_nodes = true;
  /// Contention level on the PlanetLab nodes (0 = quiescent).
  double contention = 0.0;
};

/// Build the Abilene physical network.  Node addresses are
/// 198.32.154.<10+index> (the real Abilene PlanetLab nodes lived in
/// 198.32.154.0/24).
void buildAbilene(phys::PhysNetwork& net, const AbileneOptions& options = {});

/// A virtual topology that mirrors Abilene one-to-one: each virtual
/// node bound to its PoP, each virtual link with the real IGP weight
/// (what the Section 5.2 experiment runs).
core::TopologySpec abileneMirrorSpec(const std::string& slice_name = "iias");

// ---------------------------------------------------------------------------
// DETER (Figure 3): Src -- Fwdr -- Sink on dedicated Gig-E.

struct DeterOptions {
  double link_bps = 1e9;
  double one_way_ms = 0.02;
  std::uint64_t seed = 16;
};

void buildDeter(phys::PhysNetwork& net, const DeterOptions& options = {});

/// The 3-node virtual chain over DETER (Figure 4).
core::TopologySpec deterChainSpec(const std::string& slice_name = "iias");

}  // namespace vini::topo
