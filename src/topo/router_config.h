// rcc-style router-configuration parsing (Section 6.2).
//
// "PL-VINI's current machinery for mirroring the Abilene topology
// automatically generates the necessary XORP and Click configurations
// (and determines the appropriate co-located nodes at Abilene PoPs) for
// a VINI experiment from the actual Abilene routing configuration,
// exploiting the configuration-parsing functionality from previous work
// on router configuration checking [rcc]."
//
// The format is a distilled router config, one block per router:
//
//   router Denver {
//     interface KansasCity cost 500;
//     interface Seattle cost 1100;
//   }
//
// parseRouterConfigs() turns a set of such blocks into a TopologySpec
// (virtual nodes bound to the same-named physical PoPs, links carrying
// the configured IGP costs) and performs rcc-style static checks:
// interfaces must be symmetric and costs must agree on both ends.
#pragma once

#include <string>
#include <vector>

#include "core/embedder.h"

namespace vini::topo {

struct ConfigFault {
  std::string message;
};

struct ParsedConfigs {
  core::TopologySpec topology;
  /// rcc-style faults found during static analysis.  An asymmetric
  /// adjacency or mismatched cost is a fault; the topology still parses
  /// (faulted links use the lower cost) so experiments can study it.
  std::vector<ConfigFault> faults;
};

/// Parse router configuration blocks.  Throws std::runtime_error on
/// syntax errors; semantic problems are reported as faults.
ParsedConfigs parseRouterConfigs(const std::string& text,
                                 const std::string& slice_name = "iias");

/// Emit configuration blocks for a topology (the inverse; used to
/// generate a config corpus from the Abilene catalogue).
std::string emitRouterConfigs(const core::TopologySpec& spec);

}  // namespace vini::topo
