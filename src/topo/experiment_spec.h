// ns-like experiment specification (Section 6.2).
//
// "We envision that VINI experiments would be specified using the same
// type of syntax that is used to construct ns or Emulab experiments, so
// that researchers can move an experiment from Emulab to VINI as
// seamlessly as possible."
//
// The script is one action per line:
//
//   # seconds  verb            args
//   at 10.0    fail-link       Denver KansasCity
//   at 34.0    restore-link    Denver KansasCity
//   at 20.0    fail-phys-link  Chicago NewYork
//   at 25.0    restore-phys-link Chicago NewYork
//   at 50.0    mark            convergence-checkpoint
//
// fail-link / restore-link act at the IIAS level (dropping packets in
// Click on the virtual link — the Section 5.2 mechanism);
// fail-phys-link / restore-phys-link act on the substrate (exercising
// fate sharing and upcalls); mark records a labelled checkpoint.
#pragma once

#include <string>
#include <vector>

#include "core/schedule.h"
#include "overlay/iias.h"
#include "phys/network.h"

namespace vini::topo {

struct ExperimentAction {
  double at_seconds = 0.0;
  std::string verb;
  std::vector<std::string> args;
};

/// Parse a script; throws std::runtime_error on malformed lines or
/// unknown verbs.
std::vector<ExperimentAction> parseExperimentScript(const std::string& text);

/// Schedule the actions.  `iias` may be null if the script uses only
/// physical verbs, and vice versa for `net`.
void applyExperimentScript(const std::vector<ExperimentAction>& actions,
                           core::EventSchedule& schedule,
                           overlay::IiasNetwork* iias, phys::PhysNetwork* net);

}  // namespace vini::topo
