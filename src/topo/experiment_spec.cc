#include "topo/experiment_spec.h"

#include <set>
#include <sstream>
#include <stdexcept>

namespace vini::topo {

std::vector<ExperimentAction> parseExperimentScript(const std::string& text) {
  static const std::set<std::string> known_verbs = {
      "fail-link",      "restore-link",      "mark",
      "fail-phys-link", "restore-phys-link",
  };
  std::vector<ExperimentAction> actions;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::istringstream words(line);
    std::string word;
    if (!(words >> word)) continue;  // blank line
    if (word != "at") {
      throw std::runtime_error("experiment script line " + std::to_string(lineno) +
                               ": expected 'at'");
    }
    ExperimentAction action;
    if (!(words >> action.at_seconds) || action.at_seconds < 0) {
      throw std::runtime_error("experiment script line " + std::to_string(lineno) +
                               ": bad time");
    }
    if (!(words >> action.verb) || known_verbs.count(action.verb) == 0) {
      throw std::runtime_error("experiment script line " + std::to_string(lineno) +
                               ": unknown verb '" + action.verb + "'");
    }
    while (words >> word) action.args.push_back(word);
    const std::size_t want_args = action.verb == "mark" ? 1 : 2;
    if (action.args.size() != want_args) {
      throw std::runtime_error("experiment script line " + std::to_string(lineno) +
                               ": verb " + action.verb + " wants " +
                               std::to_string(want_args) + " args");
    }
    actions.push_back(std::move(action));
  }
  return actions;
}

void applyExperimentScript(const std::vector<ExperimentAction>& actions,
                           core::EventSchedule& schedule,
                           overlay::IiasNetwork* iias, phys::PhysNetwork* net) {
  for (const auto& action : actions) {
    const std::string label = action.verb + " " +
                              (action.args.empty() ? "" : action.args[0]) +
                              (action.args.size() > 1 ? " " + action.args[1] : "");
    if (action.verb == "mark") {
      schedule.atSeconds(action.at_seconds, label, [] {});
      continue;
    }
    if (action.verb == "fail-link" || action.verb == "restore-link") {
      if (!iias) throw std::runtime_error("script needs an IIAS network");
      const bool fail = action.verb == "fail-link";
      const std::string a = action.args[0];
      const std::string b = action.args[1];
      schedule.atSeconds(action.at_seconds, label, [iias, fail, a, b] {
        if (fail) {
          iias->failLink(a, b);
        } else {
          iias->restoreLink(a, b);
        }
      });
      continue;
    }
    // Physical link verbs.
    if (!net) throw std::runtime_error("script needs a physical network");
    const bool fail = action.verb == "fail-phys-link";
    const std::string a = action.args[0];
    const std::string b = action.args[1];
    schedule.atSeconds(action.at_seconds, label, [net, fail, a, b] {
      phys::PhysLink* link = net->linkBetween(a, b);
      if (!link) throw std::runtime_error("no physical link " + a + "-" + b);
      net->setLinkState(*link, !fail);
    });
  }
}

}  // namespace vini::topo
