// Ready-made experiment worlds.
//
// A World bundles the full stack an experiment needs — event queue,
// physical network, host stacks, the VINI layer, and an IIAS overlay —
// wired the way the paper's two environments were:
//
//  * DETER (Section 5.1.1): three dedicated 2.8 GHz machines in a chain
//    on Gig-E, no CPU contention;
//  * PlanetLab-on-Abilene (Sections 5.1.2, 5.2): eleven shared P-III
//    nodes co-located with the Abilene PoPs, 100 Mb/s access NICs,
//    configurable contention, IIAS mirroring the real topology and IGP
//    weights.
//
// Tests, benches, and examples all build on these.
#pragma once

#include <memory>
#include <string>

#include "core/embedder.h"
#include "core/schedule.h"
#include "core/vini.h"
#include "overlay/iias.h"
#include "phys/network.h"
#include "sim/event_queue.h"
#include "tcpip/stack_manager.h"
#include "topo/abilene.h"
#include "topo/calibration.h"

namespace vini::topo {

struct WorldOptions {
  /// Slice resources: zero/false = PlanetLab default share; the paper's
  /// PL-VINI configuration is {0.25, true}.
  core::ResourceSpec resources;
  /// Contention on shared nodes (ignored for DETER).
  double contention = kPlanetLabContention;
  /// OSPF timers; the Section 5 experiments run hello = 5 s,
  /// dead = 10 s.
  sim::Duration hello_interval = 5 * sim::kSecond;
  sim::Duration dead_interval = 10 * sim::kSecond;
  bool enable_rip = false;
  /// Underlay failure masking (plain-overlay mode, for the ablation).
  bool mask_underlay_failures = false;
  bool expose_underlay_failures = true;
  std::uint64_t seed = 1;
  /// Spare substrate nodes ("Spare1", "Spare2", ...) kept empty at
  /// startup as live-migration destinations.  Their links carry a
  /// prohibitively high IGP weight so baseline underlay routing — and
  /// therefore every existing seeded run — is byte-identical at 0 and
  /// above.
  int spare_nodes = 0;
  /// Event-queue priority structure.  Both implementations produce
  /// byte-identical runs; kCalendar trades worst-case O(log n) for O(1)
  /// amortized under dense, roughly-uniform timestamps (see
  /// bench_engine).
  sim::QueueImpl queue_impl = sim::QueueImpl::kHeap;
  /// Worker threads for the sharded engine.  0 = classic single-threaded
  /// engine (byte-identical to the pre-sharding builds); N >= 1 runs the
  /// parallel sharded schedule, whose exports are byte-identical for
  /// every N (threads == 1 is the determinism gate's serial reference).
  /// World factories call World::finalizeSharding() automatically.
  int threads = 0;
};

class World {
 public:
  World(tcpip::HostConfig host_default, phys::NetworkConfig net_config,
        sim::QueueImpl queue_impl = sim::QueueImpl::kHeap, int threads = 0);

  sim::EventQueue queue;
  phys::PhysNetwork net;
  tcpip::StackManager stacks;
  core::EventSchedule schedule;
  std::unique_ptr<core::Vini> vini;
  std::unique_ptr<overlay::IiasNetwork> iias;

  /// Host stack of a physical node (created on demand).
  tcpip::HostStack& stack(const std::string& node_name);

  overlay::IiasRouter* router(const std::string& vnode_name) {
    return iias ? iias->router(vnode_name) : nullptr;
  }

  /// tap0 address of a virtual node.
  packet::IpAddress tapOf(const std::string& vnode_name);

  /// Run until the overlay is adjacency-complete and the route count is
  /// stable; returns false if `deadline` passes first.
  bool runUntilConverged(sim::Duration deadline = 120 * sim::kSecond);

  /// Freeze the lane set and arm the sharded engine (no-op for
  /// threads == 0, idempotent).  The factories below call this after the
  /// world is fully built — every component has interned its node tag by
  /// then — using the topology's minimum cross-node propagation delay as
  /// the conservative lookahead window.  Call manually only for worlds
  /// assembled by hand.
  void finalizeSharding();
};

/// DETER chain: Src - Fwdr - Sink, IIAS on top (Figures 3 and 4).
std::unique_ptr<World> makeDeterWorld(const WorldOptions& options = {});

/// Abilene mirror: the Section 5.2 environment.
std::unique_ptr<World> makeAbileneWorld(const WorldOptions& options = {});

/// Abilene substrate only (no slice/overlay) — for multi-slice tests.
std::unique_ptr<World> makeAbileneSubstrate(const WorldOptions& options = {});

}  // namespace vini::topo
