// Failure traces for long-running deployment studies.
//
// Section 2 positions VINI for "long-running deployment studies" as well
// as controlled experiments, and Section 6.2 wants experiments "driven
// by 'real world' routing configurations and measurements ... and also
// support playback of routing traces".  This module generates synthetic
// link up/down traces (independent exponential time-to-failure and
// time-to-repair per link, the standard availability model), serializes
// them to a replayable text format, parses them back, and schedules them
// against a physical network.
//
// Trace format, one event per line:
//
//   t=123.456 link Denver KansasCity down
//   t=180.100 link Denver KansasCity up
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/schedule.h"
#include "phys/network.h"

namespace vini::topo {

struct LinkEvent {
  double at_seconds = 0;
  std::string a;
  std::string b;
  bool up = false;
};

struct FailureModel {
  /// Mean time to failure per link (exponential).
  double mttf_seconds = 600.0;
  /// Mean time to repair (exponential).
  double mttr_seconds = 60.0;
  std::uint64_t seed = 1;
};

/// Generate an event trace covering [0, duration_seconds) for every link
/// of `net`.  Events come back sorted by time; every failure that occurs
/// before the horizon gets its repair event (possibly beyond the horizon).
std::vector<LinkEvent> generateFailureTrace(const phys::PhysNetwork& net,
                                            double duration_seconds,
                                            const FailureModel& model);

/// Serialize to / parse from the text format above.  parse throws
/// std::runtime_error on malformed lines.
std::string emitLinkTrace(const std::vector<LinkEvent>& events);
std::vector<LinkEvent> parseLinkTrace(const std::string& text);

/// Schedule the events against the physical network (fate sharing and
/// upcalls then propagate into the slices riding the failed links).
void applyLinkTrace(const std::vector<LinkEvent>& events,
                    core::EventSchedule& schedule, phys::PhysNetwork& net);

}  // namespace vini::topo
