#include "topo/failure_trace.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "sim/random.h"

namespace vini::topo {

std::vector<LinkEvent> generateFailureTrace(const phys::PhysNetwork& net,
                                            double duration_seconds,
                                            const FailureModel& model) {
  sim::Random random(model.seed);
  std::vector<LinkEvent> events;
  if (duration_seconds <= 0) return events;
  for (const auto& link : net.links()) {
    // Name the endpoints the way the schedule will look them up.
    const std::string& name = link->name();
    const auto dash = name.find('-');
    const std::string a = name.substr(0, dash);
    const std::string b = name.substr(dash + 1);
    // Explicit up/down state machine: a link only fails while up and is
    // only repaired while down, and per-link time advances strictly, so
    // a trace can never fail an already-down link however the draws land.
    double t = 0;
    bool up = true;
    while (true) {
      const double dwell =
          random.exponential(up ? model.mttf_seconds : model.mttr_seconds);
      t += std::max(dwell, 1e-9);
      if (up && t >= duration_seconds) break;  // no failure past the horizon
      up = !up;
      events.push_back(LinkEvent{t, a, b, up});
      if (up && t >= duration_seconds) break;  // final repair crossed it
    }
  }
  // Stable, time-only ordering: a link's own events keep their causal
  // (down-before-up) order even at equal timestamps.
  std::stable_sort(events.begin(), events.end(),
                   [](const LinkEvent& x, const LinkEvent& y) {
                     return x.at_seconds < y.at_seconds;
                   });
  return events;
}

std::string emitLinkTrace(const std::vector<LinkEvent>& events) {
  std::ostringstream os;
  for (const auto& event : events) {
    os << "t=" << event.at_seconds << " link " << event.a << " " << event.b
       << " " << (event.up ? "up" : "down") << "\n";
  }
  return os.str();
}

std::vector<LinkEvent> parseLinkTrace(const std::string& text) {
  std::vector<LinkEvent> events;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream words(line);
    std::string t_word, link_word, a, b, state;
    if (!(words >> t_word >> link_word >> a >> b >> state) ||
        t_word.rfind("t=", 0) != 0 || link_word != "link" ||
        (state != "up" && state != "down")) {
      throw std::runtime_error("bad trace line " + std::to_string(lineno) +
                               ": " + line);
    }
    LinkEvent event;
    try {
      std::size_t used = 0;
      event.at_seconds = std::stod(t_word.substr(2), &used);
      if (used != t_word.size() - 2) throw std::invalid_argument(t_word);
    } catch (const std::exception&) {
      throw std::runtime_error("bad time '" + t_word + "' on trace line " +
                               std::to_string(lineno) + ": " + line);
    }
    event.a = a;
    event.b = b;
    event.up = state == "up";
    events.push_back(event);
  }
  return events;
}

void applyLinkTrace(const std::vector<LinkEvent>& events,
                    core::EventSchedule& schedule, phys::PhysNetwork& net) {
  for (const auto& event : events) {
    phys::PhysLink* link = net.linkBetween(event.a, event.b);
    if (!link) {
      throw std::runtime_error("trace references unknown link " + event.a +
                               "-" + event.b);
    }
    const std::string label = std::string(event.up ? "repair " : "fail ") +
                              event.a + "-" + event.b;
    const bool up = event.up;
    schedule.atSeconds(event.at_seconds, label,
                       [link, up] { link->setUp(up); });
  }
}

}  // namespace vini::topo
