#include "topo/worlds.h"

#include "obs/obs.h"
#include "topo/calibration.h"

namespace vini::topo {

World::World(tcpip::HostConfig host_default, phys::NetworkConfig net_config,
             sim::QueueImpl queue_impl, int threads)
    : queue(queue_impl, threads),
      net(queue, net_config),
      stacks(net, host_default),
      schedule(queue) {
  // Give the obs layer a read-only view of this world's clock so
  // drop-site root closes and timeline events can self-timestamp.
  if (obs::Obs* ctx = VINI_OBS_CTX()) ctx->clock = &queue;
}

void World::finalizeSharding() {
  if (queue.shardThreads() == 0 || queue.sharded()) return;
  // Conservative lookahead = the smallest cross-node propagation delay;
  // finalizeSharding clamps a linkless topology's 0 to 1 ns.
  queue.finalizeSharding(net.minPropagation());
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    if (!ctx->shardLanesEnabled()) {
      ctx->enableShardLanes(queue.shardLaneCount());
    }
  }
}

tcpip::HostStack& World::stack(const std::string& node_name) {
  phys::PhysNode* node = net.nodeByName(node_name);
  if (!node) throw std::runtime_error("no physical node " + node_name);
  return stacks.ensure(*node);
}

packet::IpAddress World::tapOf(const std::string& vnode_name) {
  if (!iias) return {};
  core::VirtualNode* vnode = iias->slice().nodeByName(vnode_name);
  return vnode ? vnode->tapAddress() : packet::IpAddress{};
}

bool World::runUntilConverged(sim::Duration deadline) {
  const sim::Time limit = queue.now() + deadline;
  std::size_t stable_routes = 0;
  int stable_rounds = 0;
  while (queue.now() < limit) {
    queue.runUntil(queue.now() + sim::kSecond);
    if (!iias->allAdjacent()) {
      stable_rounds = 0;
      continue;
    }
    const std::size_t routes = iias->totalOspfRoutes();
    if (routes == stable_routes && routes > 0) {
      if (++stable_rounds >= 3) return true;
    } else {
      stable_routes = routes;
      stable_rounds = 0;
    }
  }
  return false;
}

namespace {

overlay::IiasConfig iiasConfig(const WorldOptions& options) {
  overlay::IiasConfig config;
  config.costs = clickCosts();
  config.ospf.hello_interval = options.hello_interval;
  config.ospf.dead_interval = options.dead_interval;
  config.enable_rip = options.enable_rip;
  config.socket_buffer = kIiasSocketBuffer;
  return config;
}

core::ViniConfig viniConfig(const WorldOptions& options) {
  core::ViniConfig config;
  config.expose_underlay_failures = options.expose_underlay_failures;
  return config;
}

/// Attach `options.spare_nodes` empty substrate nodes as migration
/// destinations.  `first_octet` is the last-octet base for their
/// addresses; `anchors` are the existing nodes each spare links to.
/// Spare links get a ~10000x IGP weight so no pre-existing best path
/// ever detours through a spare: enabling spares leaves every seeded
/// baseline byte-identical.
void addSpareNodes(phys::PhysNetwork& net, const WorldOptions& options,
                   packet::IpAddress subnet, int addr_base,
                   const std::vector<std::string>& anchors, double link_bps,
                   double one_way_ms) {
  for (int i = 1; i <= options.spare_nodes; ++i) {
    phys::PhysNode& spare = net.addNode(
        "Spare" + std::to_string(i),
        packet::IpAddress((subnet.value() & 0xffffff00u) |
                          static_cast<std::uint32_t>(addr_base + i)),
        deterCpu(options.seed + 1000 + static_cast<std::uint64_t>(i)));
    for (const auto& anchor : anchors) {
      phys::LinkConfig config;
      config.bandwidth_bps = link_bps;
      config.propagation = sim::fromMillis(one_way_ms);
      config.weight = 10000.0;
      net.addLink(spare, *net.nodeByName(anchor), config);
    }
  }
  if (options.spare_nodes > 0) net.recomputeRoutes();
}

}  // namespace

std::unique_ptr<World> makeDeterWorld(const WorldOptions& options) {
  phys::NetworkConfig net_config;
  net_config.mask_failures = options.mask_underlay_failures;
  net_config.seed = options.seed;
  auto world = std::make_unique<World>(deterHost(), net_config,
                                       options.queue_impl, options.threads);

  DeterOptions deter;
  deter.seed = options.seed + 100;
  buildDeter(world->net, deter);
  addSpareNodes(world->net, options, packet::IpAddress(192, 168, 10, 0), 100,
                {"Src", "Fwdr", "Sink"}, deter.link_bps, deter.one_way_ms);

  world->vini = std::make_unique<core::Vini>(world->net, viniConfig(options));
  core::TopologyEmbedder embedder(*world->vini);
  auto embedding = embedder.embed(deterChainSpec(), options.resources);
  world->iias = std::make_unique<overlay::IiasNetwork>(
      std::move(embedding), world->stacks, iiasConfig(options));
  world->iias->start();
  world->finalizeSharding();
  return world;
}

std::unique_ptr<World> makeAbileneSubstrate(const WorldOptions& options) {
  phys::NetworkConfig net_config;
  net_config.mask_failures = options.mask_underlay_failures;
  net_config.seed = options.seed;
  auto world = std::make_unique<World>(planetLabHost(), net_config,
                                       options.queue_impl, options.threads);

  AbileneOptions abilene;
  abilene.seed = options.seed + 200;
  abilene.contention = options.contention;
  buildAbilene(world->net, abilene);
  addSpareNodes(world->net, options, packet::IpAddress(198, 32, 154, 0), 200,
                {"Denver", "KansasCity"}, abilene.backbone_bps, 5.0);

  world->vini = std::make_unique<core::Vini>(world->net, viniConfig(options));
  // Safe before the overlay exists: lanes are keyed by *physical* node
  // tags, and every physical name was interned when its links were
  // built — stacking IIAS on the substrate only re-interns them.
  world->finalizeSharding();
  return world;
}

std::unique_ptr<World> makeAbileneWorld(const WorldOptions& options) {
  auto world = makeAbileneSubstrate(options);
  core::TopologyEmbedder embedder(*world->vini);
  auto embedding = embedder.embed(abileneMirrorSpec(), options.resources);
  world->iias = std::make_unique<overlay::IiasNetwork>(
      std::move(embedding), world->stacks, iiasConfig(options));
  world->iias->start();
  world->finalizeSharding();
  return world;
}

}  // namespace vini::topo
