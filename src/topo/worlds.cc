#include "topo/worlds.h"

#include "obs/obs.h"
#include "topo/calibration.h"

namespace vini::topo {

World::World(tcpip::HostConfig host_default, phys::NetworkConfig net_config,
             sim::QueueImpl queue_impl)
    : queue(queue_impl),
      net(queue, net_config),
      stacks(net, host_default),
      schedule(queue) {
  // Give the obs layer a read-only view of this world's clock so
  // drop-site root closes and timeline events can self-timestamp.
  if (obs::Obs* ctx = VINI_OBS_CTX()) ctx->clock = &queue;
}

tcpip::HostStack& World::stack(const std::string& node_name) {
  phys::PhysNode* node = net.nodeByName(node_name);
  if (!node) throw std::runtime_error("no physical node " + node_name);
  return stacks.ensure(*node);
}

packet::IpAddress World::tapOf(const std::string& vnode_name) {
  if (!iias) return {};
  core::VirtualNode* vnode = iias->slice().nodeByName(vnode_name);
  return vnode ? vnode->tapAddress() : packet::IpAddress{};
}

bool World::runUntilConverged(sim::Duration deadline) {
  const sim::Time limit = queue.now() + deadline;
  std::size_t stable_routes = 0;
  int stable_rounds = 0;
  while (queue.now() < limit) {
    queue.runUntil(queue.now() + sim::kSecond);
    if (!iias->allAdjacent()) {
      stable_rounds = 0;
      continue;
    }
    const std::size_t routes = iias->totalOspfRoutes();
    if (routes == stable_routes && routes > 0) {
      if (++stable_rounds >= 3) return true;
    } else {
      stable_routes = routes;
      stable_rounds = 0;
    }
  }
  return false;
}

namespace {

overlay::IiasConfig iiasConfig(const WorldOptions& options) {
  overlay::IiasConfig config;
  config.costs = clickCosts();
  config.ospf.hello_interval = options.hello_interval;
  config.ospf.dead_interval = options.dead_interval;
  config.enable_rip = options.enable_rip;
  config.socket_buffer = kIiasSocketBuffer;
  return config;
}

core::ViniConfig viniConfig(const WorldOptions& options) {
  core::ViniConfig config;
  config.expose_underlay_failures = options.expose_underlay_failures;
  return config;
}

}  // namespace

std::unique_ptr<World> makeDeterWorld(const WorldOptions& options) {
  phys::NetworkConfig net_config;
  net_config.mask_failures = options.mask_underlay_failures;
  net_config.seed = options.seed;
  auto world =
      std::make_unique<World>(deterHost(), net_config, options.queue_impl);

  DeterOptions deter;
  deter.seed = options.seed + 100;
  buildDeter(world->net, deter);

  world->vini = std::make_unique<core::Vini>(world->net, viniConfig(options));
  core::TopologyEmbedder embedder(*world->vini);
  auto embedding = embedder.embed(deterChainSpec(), options.resources);
  world->iias = std::make_unique<overlay::IiasNetwork>(
      std::move(embedding), world->stacks, iiasConfig(options));
  world->iias->start();
  return world;
}

std::unique_ptr<World> makeAbileneSubstrate(const WorldOptions& options) {
  phys::NetworkConfig net_config;
  net_config.mask_failures = options.mask_underlay_failures;
  net_config.seed = options.seed;
  auto world =
      std::make_unique<World>(planetLabHost(), net_config, options.queue_impl);

  AbileneOptions abilene;
  abilene.seed = options.seed + 200;
  abilene.contention = options.contention;
  buildAbilene(world->net, abilene);

  world->vini = std::make_unique<core::Vini>(world->net, viniConfig(options));
  return world;
}

std::unique_ptr<World> makeAbileneWorld(const WorldOptions& options) {
  auto world = makeAbileneSubstrate(options);
  core::TopologyEmbedder embedder(*world->vini);
  auto embedding = embedder.embed(abileneMirrorSpec(), options.resources);
  world->iias = std::make_unique<overlay::IiasNetwork>(
      std::move(embedding), world->stacks, iiasConfig(options));
  world->iias->start();
  return world;
}

}  // namespace vini::topo
