#include "topo/router_config.h"

#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

namespace vini::topo {

namespace {

struct Token {
  std::string text;
};

std::vector<std::string> tokenize(const std::string& text) {
  std::vector<std::string> tokens;
  std::string current;
  auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back(current);
      current.clear();
    }
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '#') {
      while (i < text.size() && text[i] != '\n') ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      flush();
    } else if (c == '{' || c == '}' || c == ';') {
      flush();
      tokens.push_back(std::string(1, c));
    } else {
      current.push_back(c);
    }
  }
  flush();
  return tokens;
}

}  // namespace

ParsedConfigs parseRouterConfigs(const std::string& text,
                                 const std::string& slice_name) {
  ParsedConfigs out;
  out.topology.name = slice_name;

  const auto tokens = tokenize(text);
  std::size_t i = 0;
  auto expect = [&](const std::string& what) {
    if (i >= tokens.size() || tokens[i] != what) {
      throw std::runtime_error("router config: expected '" + what + "' near token " +
                               std::to_string(i));
    }
    ++i;
  };
  auto next = [&]() -> const std::string& {
    if (i >= tokens.size()) {
      throw std::runtime_error("router config: unexpected end of input");
    }
    return tokens[i++];
  };

  // router -> (neighbor -> cost)
  std::map<std::string, std::map<std::string, std::uint32_t>> adjacency;

  while (i < tokens.size()) {
    expect("router");
    const std::string router = next();
    if (adjacency.count(router) != 0) {
      throw std::runtime_error("router config: duplicate router " + router);
    }
    auto& neighbors = adjacency[router];
    expect("{");
    while (i < tokens.size() && tokens[i] != "}") {
      expect("interface");
      const std::string neighbor = next();
      expect("cost");
      std::uint32_t cost = 0;
      try {
        cost = static_cast<std::uint32_t>(std::stoul(next()));
      } catch (const std::exception&) {
        throw std::runtime_error("router config: bad cost for " + router + "->" +
                                 neighbor);
      }
      expect(";");
      if (!neighbors.emplace(neighbor, cost).second) {
        out.faults.push_back(
            {"duplicate interface " + router + " -> " + neighbor});
      }
    }
    expect("}");
  }

  for (const auto& [router, neighbors] : adjacency) {
    out.topology.nodes.push_back(core::TopologyNodeSpec{router, router});
  }

  // rcc-style checks: adjacency symmetry and cost agreement.
  std::set<std::pair<std::string, std::string>> emitted;
  for (const auto& [router, neighbors] : adjacency) {
    for (const auto& [neighbor, cost] : neighbors) {
      auto peer = adjacency.find(neighbor);
      if (peer == adjacency.end() || peer->second.count(router) == 0) {
        out.faults.push_back({"asymmetric adjacency: " + router + " lists " +
                              neighbor + " but not vice versa"});
        continue;
      }
      const std::uint32_t reverse = peer->second.at(router);
      std::uint32_t use_cost = cost;
      if (reverse != cost) {
        out.faults.push_back({"cost mismatch on " + router + "-" + neighbor +
                              ": " + std::to_string(cost) + " vs " +
                              std::to_string(reverse)});
        use_cost = std::min(cost, reverse);
      }
      const auto key = router < neighbor ? std::make_pair(router, neighbor)
                                         : std::make_pair(neighbor, router);
      if (emitted.insert(key).second) {
        out.topology.links.push_back(
            core::TopologyLinkSpec{key.first, key.second, use_cost});
      }
    }
  }
  return out;
}

std::string emitRouterConfigs(const core::TopologySpec& spec) {
  // Collect per-router interface lists from the link list.
  std::map<std::string, std::map<std::string, std::uint32_t>> adjacency;
  for (const auto& node : spec.nodes) adjacency[node.name];
  for (const auto& link : spec.links) {
    adjacency[link.a][link.b] = link.igp_cost;
    adjacency[link.b][link.a] = link.igp_cost;
  }
  std::ostringstream os;
  os << "# generated router configuration (" << spec.name << ")\n";
  for (const auto& [router, neighbors] : adjacency) {
    os << "router " << router << " {\n";
    for (const auto& [neighbor, cost] : neighbors) {
      os << "  interface " << neighbor << " cost " << cost << ";\n";
    }
    os << "}\n";
  }
  return os.str();
}

}  // namespace vini::topo
