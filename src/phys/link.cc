#include "phys/link.h"

#include <string>
#include <utility>

#include "check/audit.h"

namespace vini::phys {

namespace {

#if VINI_AUDIT_ENABLED
// V102: the running byte counter must equal the sum of the packets
// actually queued — a mismatch means drop-tail accounting drifted and
// every subsequent queue-full decision is wrong.  O(queue) per call,
// audit builds only.
void auditByteAccounting(
    const std::deque<std::shared_ptr<packet::Packet>>& tx_queue,
    std::size_t queued_bytes) {
  std::size_t sum = 0;
  for (const auto& p : tx_queue) sum += p->wireBytes();
  VINI_AUDIT_CHECK(
      sum == queued_bytes,
      (check::Diagnostic{check::Severity::kError, "V102", "phys channel",
                         "queued_bytes counter " + std::to_string(queued_bytes) +
                             " != " + std::to_string(sum) +
                             " bytes actually queued"}));
}
#else
void auditByteAccounting(const std::deque<std::shared_ptr<packet::Packet>>&,
                         std::size_t) {}
#endif

}  // namespace

namespace {

obs::TraceRecord channelRecord(obs::TraceEvent ev, sim::Time t,
                               const packet::Packet& p, std::int16_t link) {
  obs::TraceRecord rec;
  rec.t = t;
  rec.event = ev;
  rec.link = link;
  rec.src = p.ip.src.value();
  rec.dst = p.ip.dst.value();
  rec.flow = p.meta.flow_id;
  rec.seq = p.meta.app_seq;
  rec.bytes = static_cast<std::uint32_t>(p.wireBytes());
  return rec;
}

}  // namespace

Channel::Channel(sim::EventQueue& queue, sim::Random& random,
                 const LinkConfig& config, const bool& link_up,
                 std::string label, sim::NodeTag tx_node, sim::NodeTag rx_node)
    : queue_(queue),
      random_(random),
      config_(config),
      link_up_(link_up),
      tx_node_(tx_node),
      rx_node_(rx_node),
      label_(std::move(label)) {
  if (queue_.shardThreads() > 0) lane_random_.emplace(random_.fork());
  if (label_.empty()) return;
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    obs::MetricsRegistry& m = ctx->metrics;
    m_tx_packets_ = &m.counter("phys.link", label_, "tx_packets");
    m_tx_bytes_ = &m.counter("phys.link", label_, "tx_bytes");
    m_queue_drops_ = &m.counter("phys.link", label_, "queue_drops");
    m_loss_drops_ = &m.counter("phys.link", label_, "loss_drops");
    m_down_drops_ = &m.counter("phys.link", label_, "down_drops");
    m_queued_bytes_ = &m.gauge("phys.link", label_, "queued_bytes");
    trace_link_ = ctx->tracer.internLink(label_);
    span_link_ = ctx->spans.intern(label_);
    span_queue_ = ctx->spans.intern("phys.queue");
    span_serialize_ = ctx->spans.intern("phys.serialize");
    span_propagation_ = ctx->spans.intern("phys.propagation");
  }
}

std::uint32_t Channel::spanOpen(const packet::Packet& p, std::int16_t layer) {
  if (p.meta.trace_id == 0) return 0;
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    return ctx->spans.open(p.meta.trace_id, layer, queue_.now(), -1,
                           span_link_,
                           static_cast<std::uint32_t>(p.wireBytes()));
  }
  return 0;
}

void Channel::spanClose(std::uint32_t span_id) {
  if (span_id == 0) return;
  if (obs::Obs* ctx = VINI_OBS_CTX()) ctx->spans.close(span_id, queue_.now());
}

void Channel::spanRootDrop(const packet::Packet& p, const char* reason) {
  if (p.meta.trace_id == 0) return;
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    ctx->spans.closeRoot(p.meta.trace_id, queue_.now(),
                         obs::SpanOutcome::kDropped,
                         ctx->spans.intern(reason));
  }
}

void Channel::transmit(packet::Packet p) {
  if (!link_up_) {
    ++stats_.down_drops;
    VINI_OBS_INC(m_down_drops_);
    VINI_OBS_TRACE(channelRecord(obs::TraceEvent::kDownDrop, queue_.now(), p,
                                 trace_link_));
    spanRootDrop(p, "link_down");
    return;
  }
  const std::size_t wire = p.wireBytes();
  if (queued_bytes_ + wire > config_.queue_bytes) {
    ++stats_.queue_drops;
    VINI_OBS_INC(m_queue_drops_);
    VINI_OBS_TRACE(channelRecord(obs::TraceEvent::kQueueDrop, queue_.now(), p,
                                 trace_link_));
    spanRootDrop(p, "queue_full");
    return;
  }
  queued_bytes_ += wire;
  VINI_OBS_GAUGE_SET(m_queued_bytes_, static_cast<double>(queued_bytes_));
  VINI_OBS_TRACE(channelRecord(obs::TraceEvent::kEnqueue, queue_.now(), p,
                               trace_link_));
  tx_queue_spans_.push_back(spanOpen(p, span_queue_));
  tx_queue_.push_back(std::make_shared<packet::Packet>(std::move(p)));
  auditByteAccounting(tx_queue_, queued_bytes_);
  if (!transmitting_) startNextTransmission();
}

void Channel::startNextTransmission() {
  if (tx_queue_.empty()) {
    transmitting_ = false;
    VINI_AUDIT_CHECK(
        queued_bytes_ == 0,
        (check::Diagnostic{check::Severity::kError, "V102", "phys channel",
                           "empty transmit queue but " +
                               std::to_string(queued_bytes_) +
                               " bytes still accounted"}));
    return;
  }
  transmitting_ = true;
  std::shared_ptr<packet::Packet> p = std::move(tx_queue_.front());
  tx_queue_.pop_front();
  const std::uint32_t queue_span = tx_queue_spans_.front();
  tx_queue_spans_.pop_front();
  spanClose(queue_span);
  const std::size_t wire = p->wireBytes();
  VINI_AUDIT_CHECK(
      wire <= queued_bytes_,
      (check::Diagnostic{check::Severity::kError, "V102", "phys channel",
                         "byte accounting underflow: dequeued " +
                             std::to_string(wire) + " bytes with only " +
                             std::to_string(queued_bytes_) + " accounted"}));
  queued_bytes_ -= wire;
  VINI_OBS_GAUGE_SET(m_queued_bytes_, static_cast<double>(queued_bytes_));
  auditByteAccounting(tx_queue_, queued_bytes_);

  // Integer ceiling: a frame holds the wire for at least its bit time.
  // The old float product truncated up to 1 ns/frame, letting
  // back-to-back frames overlap on a saturated link.
  const sim::Duration serialization =
      sim::serializationDelay(wire, config_.bandwidth_bps);
  VINI_OBS_TRACE(channelRecord(obs::TraceEvent::kSerializeStart, queue_.now(),
                               *p, trace_link_));
  const std::uint32_t serialize_span = spanOpen(*p, span_serialize_);

  queue_.scheduleAfter(serialization, "phys.link", tx_node_,
                       [this, p = std::move(p), serialize_span]() mutable {
    ++stats_.tx_packets;
    stats_.tx_bytes += p->wireBytes();
    VINI_OBS_INC(m_tx_packets_);
    VINI_OBS_ADD(m_tx_bytes_, p->wireBytes());
    spanClose(serialize_span);
    // The wire is free again; start the next frame.
    const bool lost = !link_up_ ||
                      (config_.loss_rate > 0.0 && rng().chance(config_.loss_rate));
    if (lost) {
      if (!link_up_) {
        ++stats_.down_drops;
        VINI_OBS_INC(m_down_drops_);
        VINI_OBS_TRACE(channelRecord(obs::TraceEvent::kDownDrop, queue_.now(),
                                     *p, trace_link_));
        spanRootDrop(*p, "link_down");
      } else {
        ++stats_.loss_drops;
        VINI_OBS_INC(m_loss_drops_);
        VINI_OBS_TRACE(channelRecord(obs::TraceEvent::kLossDrop, queue_.now(),
                                     *p, trace_link_));
        spanRootDrop(*p, "wire_loss");
      }
    } else {
      const std::uint32_t prop_span = spanOpen(*p, span_propagation_);
      // The delivery event belongs to the *receiving* node — this is
      // the cross-node edge whose propagation delay bounds the
      // conservative lookahead window.
      queue_.scheduleAfter(config_.propagation, "phys.link", rx_node_,
                           [this, p = std::move(p), prop_span]() mutable {
                             spanClose(prop_span);
                             // A link that died mid-flight eats the packet:
                             // physical fate sharing.
                             if (!link_up_) {
                               ++stats_.down_drops;
                               VINI_OBS_INC(m_down_drops_);
                               VINI_OBS_TRACE(channelRecord(
                                 obs::TraceEvent::kDownDrop, queue_.now(), *p,
                                 trace_link_));
                               spanRootDrop(*p, "link_down_midflight");
                               return;
                             }
                             if (deliver_) deliver_(std::move(*p));
                           });
    }
    startNextTransmission();
  });
}

PhysLink::PhysLink(int id, std::string name, NodeId a, NodeId b,
                   sim::EventQueue& queue, sim::Random& random,
                   LinkConfig config, const std::string& a_name,
                   const std::string& b_name)
    : id_(id),
      name_(std::move(name)),
      a_(a),
      b_(b),
      base_config_(config),
      ab_(queue, random, config, up_, name_ + "/ab",
          a_name.empty() ? sim::kNoNode : queue.internNodeTag(a_name),
          b_name.empty() ? sim::kNoNode : queue.internNodeTag(b_name)),
      ba_(queue, random, config, up_, name_ + "/ba",
          b_name.empty() ? sim::kNoNode : queue.internNodeTag(b_name),
          a_name.empty() ? sim::kNoNode : queue.internNodeTag(a_name)) {}

void PhysLink::setUp(bool up) {
  if (up == up_) return;
  up_ = up;
  for (auto& listener : listeners_) listener(*this, up_);
}

void PhysLink::applyConfig(LinkConfig config) {
  // The routing weight stays authoritative from construction; a degrade
  // must not silently reroute the underlay.
  config.weight = base_config_.weight;
  ab_.setConfig(config);
  ba_.setConfig(config);
  degraded_ = true;
}

void PhysLink::restoreConfig() {
  ab_.setConfig(base_config_);
  ba_.setConfig(base_config_);
  degraded_ = false;
}

}  // namespace vini::phys
