#include "phys/link.h"

#include <string>
#include <utility>

#include "check/audit.h"

namespace vini::phys {

namespace {

#if VINI_AUDIT_ENABLED
// V102: the running byte counter must equal the sum of the packets
// actually queued — a mismatch means drop-tail accounting drifted and
// every subsequent queue-full decision is wrong.  O(queue) per call,
// audit builds only.
void auditByteAccounting(const std::deque<packet::Packet>& tx_queue,
                         std::size_t queued_bytes) {
  std::size_t sum = 0;
  for (const auto& p : tx_queue) sum += p.wireBytes();
  VINI_AUDIT_CHECK(
      sum == queued_bytes,
      (check::Diagnostic{check::Severity::kError, "V102", "phys channel",
                         "queued_bytes counter " + std::to_string(queued_bytes) +
                             " != " + std::to_string(sum) +
                             " bytes actually queued"}));
}
#else
void auditByteAccounting(const std::deque<packet::Packet>&, std::size_t) {}
#endif

}  // namespace

Channel::Channel(sim::EventQueue& queue, sim::Random& random,
                 const LinkConfig& config, const bool& link_up)
    : queue_(queue), random_(random), config_(config), link_up_(link_up) {}

void Channel::transmit(packet::Packet p) {
  if (!link_up_) {
    ++stats_.down_drops;
    return;
  }
  const std::size_t wire = p.wireBytes();
  if (queued_bytes_ + wire > config_.queue_bytes) {
    ++stats_.queue_drops;
    return;
  }
  queued_bytes_ += wire;
  tx_queue_.push_back(std::move(p));
  auditByteAccounting(tx_queue_, queued_bytes_);
  if (!transmitting_) startNextTransmission();
}

void Channel::startNextTransmission() {
  if (tx_queue_.empty()) {
    transmitting_ = false;
    VINI_AUDIT_CHECK(
        queued_bytes_ == 0,
        (check::Diagnostic{check::Severity::kError, "V102", "phys channel",
                           "empty transmit queue but " +
                               std::to_string(queued_bytes_) +
                               " bytes still accounted"}));
    return;
  }
  transmitting_ = true;
  packet::Packet p = std::move(tx_queue_.front());
  tx_queue_.pop_front();
  const std::size_t wire = p.wireBytes();
  VINI_AUDIT_CHECK(
      wire <= queued_bytes_,
      (check::Diagnostic{check::Severity::kError, "V102", "phys channel",
                         "byte accounting underflow: dequeued " +
                             std::to_string(wire) + " bytes with only " +
                             std::to_string(queued_bytes_) + " accounted"}));
  queued_bytes_ -= wire;
  auditByteAccounting(tx_queue_, queued_bytes_);

  const auto serialization = static_cast<sim::Duration>(
      static_cast<double>(wire) * 8.0 / config_.bandwidth_bps *
      static_cast<double>(sim::kSecond));

  queue_.scheduleAfter(serialization, [this, p = std::move(p)]() mutable {
    ++stats_.tx_packets;
    stats_.tx_bytes += p.wireBytes();
    // The wire is free again; start the next frame.
    const bool lost = !link_up_ ||
                      (config_.loss_rate > 0.0 && random_.chance(config_.loss_rate));
    if (lost) {
      if (!link_up_) {
        ++stats_.down_drops;
      } else {
        ++stats_.loss_drops;
      }
    } else {
      queue_.scheduleAfter(config_.propagation,
                           [this, p = std::move(p)]() mutable {
                             // A link that died mid-flight eats the packet:
                             // physical fate sharing.
                             if (!link_up_) {
                               ++stats_.down_drops;
                               return;
                             }
                             if (deliver_) deliver_(std::move(p));
                           });
    }
    startNextTransmission();
  });
}

PhysLink::PhysLink(int id, std::string name, NodeId a, NodeId b,
                   sim::EventQueue& queue, sim::Random& random, LinkConfig config)
    : id_(id),
      name_(std::move(name)),
      a_(a),
      b_(b),
      ab_(queue, random, config, up_),
      ba_(queue, random, config, up_) {}

void PhysLink::setUp(bool up) {
  if (up == up_) return;
  up_ = up;
  for (auto& listener : listeners_) listener(*this, up_);
}

}  // namespace vini::phys
