// Physical links.
//
// A PhysLink is a full-duplex point-to-point link between two physical
// nodes: a pair of unidirectional channels, each modelling serialization
// time (bandwidth), a drop-tail output queue, propagation delay, random
// loss, and an up/down state.  Link state changes are observable — the
// VINI layer subscribes so virtual links can share fate with the
// physical components beneath them (Section 3.1).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "packet/packet.h"
#include "sim/event_queue.h"
#include "sim/random.h"
#include "sim/time.h"

namespace vini::phys {

using NodeId = int;

struct LinkConfig {
  double bandwidth_bps = 1e9;                       ///< Gig-E by default
  sim::Duration propagation = 0;                    ///< one-way delay
  std::size_t queue_bytes = 512 * 1024;             ///< drop-tail output queue
  double loss_rate = 0.0;                           ///< random per-packet loss
  double weight = 1.0;                              ///< underlay routing metric
};

/// Counters for one direction of a link.
struct ChannelStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t loss_drops = 0;
  std::uint64_t down_drops = 0;
};

/// One direction of a physical link.
class Channel {
 public:
  using DeliverFn = std::function<void(packet::Packet)>;

  /// `label` identifies this direction for observability ("Denver-
  /// KansasCity/ab"); when non-empty and an obs context is installed,
  /// the channel registers its counters and emits trace events under it.
  /// `tx_node` / `rx_node` attribute the channel's events to physical
  /// nodes (sim::EventQueue::internNodeTag) for the shard-readiness
  /// telemetry: the serialization event belongs to the transmitting
  /// node, the propagation/delivery event to the receiving node.
  /// Attribution is passive — runs are byte-identical without it.
  Channel(sim::EventQueue& queue, sim::Random& random, const LinkConfig& config,
          const bool& link_up, std::string label = {},
          sim::NodeTag tx_node = sim::kNoNode,
          sim::NodeTag rx_node = sim::kNoNode);

  /// Enqueue a packet for transmission; it is delivered to the receiver's
  /// handler after queueing + serialization + propagation, unless dropped.
  void transmit(packet::Packet p);

  /// The receiving node installs its delivery handler here.
  void setDeliverHandler(DeliverFn fn) { deliver_ = std::move(fn); }

  const ChannelStats& stats() const { return stats_; }
  std::size_t queuedBytes() const { return queued_bytes_; }
  const LinkConfig& config() const { return config_; }

  /// Replace the live configuration.  Takes effect for packets not yet
  /// serializing: frames already on the wire finish under the old rate.
  void setConfig(const LinkConfig& config) { config_ = config; }

 private:
  void startNextTransmission();

  // Span plumbing for traced packets (meta.trace_id != 0): the link hop
  // decomposes into queueing, serialization, and propagation spans, and
  // every channel drop site closes the packet's root span with a reason.
  std::uint32_t spanOpen(const packet::Packet& p, std::int16_t layer);
  void spanClose(std::uint32_t span_id);
  void spanRootDrop(const packet::Packet& p, const char* reason);

  sim::EventQueue& queue_;
  /// The network RNG, or (sharded queue) a per-channel fork of it: loss
  /// draws happen inside worker lanes, and a shared engine would make
  /// the draw sequence depend on lane interleaving.  Forking at
  /// construction (single-threaded, deterministic order) pins each
  /// channel's stream to the topology, not the thread count.
  sim::Random& random_;
  std::optional<sim::Random> lane_random_;
  sim::Random& rng() { return lane_random_ ? *lane_random_ : random_; }
  LinkConfig config_;
  const bool& link_up_;
  DeliverFn deliver_;
  /// Packets are boxed once on enqueue and the same box rides through
  /// the queue and both wire events (serialization, propagation), so a
  /// link hop never copies the 144-byte Packet and the event callbacks
  /// capture only a pointer — small enough for the event queue's inline
  /// storage.  The box is exclusively owned; deliver_ receives the
  /// moved-out value.
  std::deque<std::shared_ptr<packet::Packet>> tx_queue_;
  /// Queueing-span id of each tx_queue_ entry (0 = untraced); kept in
  /// lockstep with tx_queue_.
  std::deque<std::uint32_t> tx_queue_spans_;
  std::size_t queued_bytes_ = 0;
  bool transmitting_ = false;
  ChannelStats stats_;

  /// Node attribution for scheduled wire events (kNoNode when the
  /// owning PhysNetwork did not supply endpoint names).
  sim::NodeTag tx_node_ = sim::kNoNode;
  sim::NodeTag rx_node_ = sim::kNoNode;

  // Observability handles, cached at construction (null when no obs
  // context was installed or the channel is unlabelled).
  std::string label_;
  std::int16_t trace_link_ = -1;
  std::int16_t span_link_ = -1;
  std::int16_t span_queue_ = -1;
  std::int16_t span_serialize_ = -1;
  std::int16_t span_propagation_ = -1;
  obs::Counter* m_tx_packets_ = nullptr;
  obs::Counter* m_tx_bytes_ = nullptr;
  obs::Counter* m_queue_drops_ = nullptr;
  obs::Counter* m_loss_drops_ = nullptr;
  obs::Counter* m_down_drops_ = nullptr;
  obs::Gauge* m_queued_bytes_ = nullptr;
};

/// A full-duplex physical link between nodes `a` and `b`.
class PhysLink {
 public:
  using StateListener = std::function<void(PhysLink&, bool up)>;

  /// `a_name` / `b_name`, when supplied, are the endpoint nodes' names;
  /// they are interned as NodeTags so each channel's wire events carry
  /// per-node attribution (see Channel).
  PhysLink(int id, std::string name, NodeId a, NodeId b,
           sim::EventQueue& queue, sim::Random& random, LinkConfig config,
           const std::string& a_name = {}, const std::string& b_name = {});

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  NodeId nodeA() const { return a_; }
  NodeId nodeB() const { return b_; }
  const LinkConfig& config() const { return ab_.config(); }

  /// True if `n` is one of the link's endpoints.
  bool attaches(NodeId n) const { return n == a_ || n == b_; }
  /// The endpoint opposite `n`.
  NodeId peerOf(NodeId n) const { return n == a_ ? b_ : a_; }

  /// The transmit channel out of node `n`.
  Channel& channelFrom(NodeId n) { return n == a_ ? ab_ : ba_; }
  const Channel& channelFrom(NodeId n) const { return n == a_ ? ab_ : ba_; }

  bool isUp() const { return up_; }
  /// Fail or restore the link; notifies subscribers on change.
  void setUp(bool up);

  // -- Runtime quality degradation (fault injection) -----------------------

  /// The construction-time configuration, kept for restoreConfig().
  const LinkConfig& baseConfig() const { return base_config_; }
  /// Replace the live configuration of both directions (degraded link:
  /// extra loss, inflated delay, reduced bandwidth).  The underlay
  /// routing weight is never changed — a degraded link still carries
  /// whatever the topology routes over it.
  void applyConfig(LinkConfig config);
  /// Return to the construction-time configuration.
  void restoreConfig();
  bool isDegraded() const { return degraded_; }

  /// Subscribe to up/down transitions (used by the VINI fate-sharing and
  /// upcall machinery).
  void subscribe(StateListener listener) {
    listeners_.push_back(std::move(listener));
  }

 private:
  int id_;
  std::string name_;
  NodeId a_;
  NodeId b_;
  bool up_ = true;
  bool degraded_ = false;
  LinkConfig base_config_;
  Channel ab_;
  Channel ba_;
  std::vector<StateListener> listeners_;
};

}  // namespace vini::phys
