#include "phys/node.h"

namespace vini::phys {

void PhysNode::attachLink(PhysLink& link) {
  links_.push_back(&link);
  link.channelFrom(link.peerOf(id_))
      .setDeliverHandler([this, &link](packet::Packet p) {
        if (handler_) handler_(std::move(p), link);
      });
}

}  // namespace vini::phys
