#include "phys/node.h"

namespace vini::phys {

PhysNode::PhysNode(NodeId id, std::string name, sim::EventQueue& queue,
                   cpu::SchedulerConfig cpu_config)
    : id_(id), name_(std::move(name)) {
  // Key the scheduler's (and its processes') metrics by this node's name
  // so "click-vini" on Denver and "click-vini" on Seattle stay distinct.
  cpu_config.node_name = name_;
  scheduler_ = std::make_unique<cpu::Scheduler>(queue, std::move(cpu_config));
}

void PhysNode::attachLink(PhysLink& link) {
  links_.push_back(&link);
  link.channelFrom(link.peerOf(id_))
      .setDeliverHandler([this, &link](packet::Packet p) {
        if (handler_) handler_(std::move(p), link);
      });
}

}  // namespace vini::phys
