#include "phys/network.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace vini::phys {

PhysNetwork::PhysNetwork(sim::EventQueue& queue, NetworkConfig config)
    : queue_(queue), config_(config), random_(config.seed) {}

PhysNode& PhysNetwork::addNode(const std::string& name, packet::IpAddress address,
                               cpu::SchedulerConfig cpu_config) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  if (cpu_config.seed == 1) cpu_config.seed = config_.seed + 1000 + id;
  nodes_.push_back(std::make_unique<PhysNode>(id, name, queue_, cpu_config));
  nodes_.back()->setAddress(address);
  name_to_node_[name] = id;
  if (!address.isZero()) address_to_node_[address] = id;
  routes_dirty_ = true;
  return *nodes_.back();
}

PhysLink& PhysNetwork::addLink(PhysNode& a, PhysNode& b, LinkConfig config) {
  const int id = static_cast<int>(links_.size());
  links_.push_back(std::make_unique<PhysLink>(
      id, a.name() + "-" + b.name(), a.id(), b.id(), queue_, random_, config,
      a.name(), b.name()));
  PhysLink& link = *links_.back();
  a.attachLink(link);
  b.attachLink(link);
  // Apply the masking policy on every state change.
  link.subscribe([this](PhysLink&, bool) {
    if (config_.mask_failures) {
      queue_.scheduleAfter(config_.reroute_delay, [this] { recomputeRoutes(); });
    }
    // In expose mode routes stay pinned to the configured topology, so
    // nothing to do: packets hitting the dead link are dropped.
  });
  routes_dirty_ = true;
  return link;
}

void PhysNetwork::registerAddress(packet::IpAddress addr, NodeId node) {
  address_to_node_[addr] = node;
}

PhysNode* PhysNetwork::nodeById(NodeId id) {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size()) return nullptr;
  return nodes_[static_cast<std::size_t>(id)].get();
}

PhysNode* PhysNetwork::nodeByName(const std::string& name) {
  auto it = name_to_node_.find(name);
  return it == name_to_node_.end() ? nullptr : nodes_[it->second].get();
}

NodeId PhysNetwork::nodeForAddress(packet::IpAddress addr) const {
  auto it = address_to_node_.find(addr);
  return it == address_to_node_.end() ? -1 : it->second;
}

PhysLink* PhysNetwork::linkById(int id) {
  if (id < 0 || static_cast<std::size_t>(id) >= links_.size()) return nullptr;
  return links_[static_cast<std::size_t>(id)].get();
}

PhysLink* PhysNetwork::linkBetween(NodeId a, NodeId b) {
  for (auto& link : links_) {
    if (link->attaches(a) && link->attaches(b)) return link.get();
  }
  return nullptr;
}

PhysLink* PhysNetwork::linkBetween(const std::string& a, const std::string& b) {
  PhysNode* na = nodeByName(a);
  PhysNode* nb = nodeByName(b);
  if (!na || !nb) return nullptr;
  return linkBetween(na->id(), nb->id());
}

sim::Duration PhysNetwork::minPropagation() const {
  sim::Duration min = 0;
  for (const auto& link : links_) {
    const sim::Duration p = link->baseConfig().propagation;
    if (min == 0 || p < min) min = p;
  }
  return min;
}

void PhysNetwork::runDijkstra(NodeId src, std::vector<int>& next_link_out) const {
  const std::size_t n = nodes_.size();
  std::vector<double> dist(n, std::numeric_limits<double>::infinity());
  std::vector<int> first_link(n, -1);
  using Item = std::pair<double, NodeId>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  dist[static_cast<std::size_t>(src)] = 0.0;
  pq.push({0.0, src});
  while (!pq.empty()) {
    auto [d, u] = pq.top();
    pq.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;
    for (const PhysLink* link : nodes_[static_cast<std::size_t>(u)]->links()) {
      if (config_.mask_failures && !link->isUp()) continue;
      const NodeId v = link->peerOf(u);
      const double nd = d + link->config().weight;
      auto& dv = dist[static_cast<std::size_t>(v)];
      // Tie-break deterministically by link id for repeatability.
      if (nd < dv) {
        dv = nd;
        first_link[static_cast<std::size_t>(v)] =
            (u == src) ? link->id() : first_link[static_cast<std::size_t>(u)];
        pq.push({nd, v});
      }
    }
  }
  next_link_out = std::move(first_link);
}

void PhysNetwork::recomputeRoutes() {
  const std::size_t n = nodes_.size();
  next_link_.assign(n, {});
  for (std::size_t src = 0; src < n; ++src) {
    runDijkstra(static_cast<NodeId>(src), next_link_[src]);
  }
  routes_dirty_ = false;
}

PhysLink* PhysNetwork::nextLinkFor(NodeId from, packet::IpAddress dst) {
  const NodeId dest = nodeForAddress(dst);
  if (dest < 0 || dest == from) return nullptr;
  if (routes_dirty_) recomputeRoutes();
  const int link_id = next_link_[static_cast<std::size_t>(from)]
                                [static_cast<std::size_t>(dest)];
  return link_id < 0 ? nullptr : links_[static_cast<std::size_t>(link_id)].get();
}

std::vector<PhysLink*> PhysNetwork::pathBetween(NodeId a, NodeId b) {
  if (routes_dirty_) recomputeRoutes();
  std::vector<PhysLink*> path;
  NodeId cur = a;
  std::size_t guard = 0;
  while (cur != b && guard++ <= links_.size()) {
    const int link_id =
        next_link_[static_cast<std::size_t>(cur)][static_cast<std::size_t>(b)];
    if (link_id < 0) return {};
    PhysLink* link = links_[static_cast<std::size_t>(link_id)].get();
    path.push_back(link);
    cur = link->peerOf(cur);
  }
  if (cur != b) return {};
  return path;
}

void PhysNetwork::setLinkState(PhysLink& link, bool up) { link.setUp(up); }

}  // namespace vini::phys
