// The physical substrate network.
//
// PhysNetwork owns the nodes and links of the fixed infrastructure and
// provides underlay IP routing between nodes (shortest path by link
// weight).  Two failure-handling modes exist, because the paper draws a
// sharp line between them (Section 3.1, "Exposure of underlying topology
// changes"):
//
//  * expose (default, the VINI requirement): underlay routes are computed
//    on the configured topology and do NOT route around failures — a
//    packet that reaches a dead link dies, and the virtual links pinned
//    to that physical link share its fate.
//  * mask (the behaviour of a plain overlay on the commodity Internet,
//    which the paper criticises): after a failure, the underlay silently
//    recomputes routes around it following a convergence delay, hiding
//    the event from experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cpu/scheduler.h"
#include "packet/ip_address.h"
#include "phys/link.h"
#include "phys/node.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace vini::phys {

struct NetworkConfig {
  /// If true, the underlay reroutes around failures (masking them).
  bool mask_failures = false;
  /// Convergence delay before masked rerouting takes effect.
  sim::Duration reroute_delay = 200 * sim::kMillisecond;
  std::uint64_t seed = 42;
};

class PhysNetwork {
 public:
  PhysNetwork(sim::EventQueue& queue, NetworkConfig config = {});

  // -- Topology construction ----------------------------------------------

  /// Create a node.  `address` is its public underlay address.
  PhysNode& addNode(const std::string& name, packet::IpAddress address,
                    cpu::SchedulerConfig cpu_config = {});

  /// Create a full-duplex link between two nodes.
  PhysLink& addLink(PhysNode& a, PhysNode& b, LinkConfig config = {});

  /// Register an additional address as belonging to `node` (e.g. an
  /// external server reachable at that node).
  void registerAddress(packet::IpAddress addr, NodeId node);

  // -- Lookup ---------------------------------------------------------------

  PhysNode* nodeById(NodeId id);
  PhysNode* nodeByName(const std::string& name);
  bool hasNode(const std::string& name) const {
    return name_to_node_.count(name) != 0;
  }
  NodeId nodeForAddress(packet::IpAddress addr) const;  ///< -1 if unknown
  PhysLink* linkById(int id);
  PhysLink* linkBetween(NodeId a, NodeId b);
  PhysLink* linkBetween(const std::string& a, const std::string& b);

  std::size_t nodeCount() const { return nodes_.size(); }
  std::size_t linkCount() const { return links_.size(); }
  /// Smallest one-way propagation delay over all links — the largest
  /// conservative lookahead a sharded run of this topology could use,
  /// and what vini_profile feeds the ParallelismProfiler.  0 when the
  /// network has no links.
  sim::Duration minPropagation() const;
  const std::vector<std::unique_ptr<PhysNode>>& nodes() const { return nodes_; }
  const std::vector<std::unique_ptr<PhysLink>>& links() const { return links_; }

  // -- Underlay routing -----------------------------------------------------

  /// Next link out of `from` toward destination address `dst`; nullptr if
  /// the destination is unknown, local, or unreachable.
  PhysLink* nextLinkFor(NodeId from, packet::IpAddress dst);

  /// Current underlay path between two nodes (sequence of links), or an
  /// empty vector if unreachable.  Virtual links pin themselves to this.
  std::vector<PhysLink*> pathBetween(NodeId a, NodeId b);

  /// Recompute all routing tables immediately.
  void recomputeRoutes();

  /// Fail / restore a link, applying the configured masking behaviour.
  void setLinkState(PhysLink& link, bool up);

  sim::EventQueue& queue() { return queue_; }
  sim::Random& random() { return random_; }
  const NetworkConfig& config() const { return config_; }

 private:
  void runDijkstra(NodeId src, std::vector<int>& next_link_out) const;

  sim::EventQueue& queue_;
  NetworkConfig config_;
  sim::Random random_;
  std::vector<std::unique_ptr<PhysNode>> nodes_;
  std::vector<std::unique_ptr<PhysLink>> links_;
  std::unordered_map<packet::IpAddress, NodeId> address_to_node_;
  std::unordered_map<std::string, NodeId> name_to_node_;
  // next_link_[src][dst] = link id of the first hop, or -1.
  std::vector<std::vector<int>> next_link_;
  bool routes_dirty_ = true;
};

}  // namespace vini::phys
