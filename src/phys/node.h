// Physical nodes.
//
// A PhysNode models one machine of the fixed infrastructure — a PlanetLab
// server co-located with an Abilene PoP, or a DETER testbed PC.  It owns
// a CPU scheduler (slices contend here) and the attachment points for its
// links; the host networking stack (tcpip::HostStack) registers a
// delivery handler to receive packets arriving on any attached link.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cpu/scheduler.h"
#include "packet/ip_address.h"
#include "packet/packet.h"
#include "phys/link.h"

namespace vini::phys {

class PhysNode {
 public:
  /// Handler invoked when a packet arrives on an attached link.
  using PacketHandler = std::function<void(packet::Packet, PhysLink&)>;

  PhysNode(NodeId id, std::string name, sim::EventQueue& queue,
           cpu::SchedulerConfig cpu_config);

  NodeId id() const { return id_; }
  const std::string& name() const { return name_; }

  cpu::Scheduler& scheduler() { return *scheduler_; }

  /// Primary (public) address of this node — the address remote tunnels
  /// target, like a PlanetLab node's public IP.
  packet::IpAddress address() const { return address_; }
  void setAddress(packet::IpAddress addr) { address_ = addr; }

  /// Attach a link endpoint: wires the link's receive channel into this
  /// node's delivery path.
  void attachLink(PhysLink& link);

  const std::vector<PhysLink*>& links() const { return links_; }

  /// The host stack installs itself here.
  void setPacketHandler(PacketHandler handler) { handler_ = std::move(handler); }

 private:
  NodeId id_;
  std::string name_;
  std::unique_ptr<cpu::Scheduler> scheduler_;
  packet::IpAddress address_;
  std::vector<PhysLink*> links_;
  PacketHandler handler_;
};

}  // namespace vini::phys
