// Discrete-event engine.
//
// The EventQueue is the heart of the substrate: every physical link
// transmission, CPU scheduling decision, protocol timer, and application
// action is an event.  Events at equal timestamps execute in scheduling
// order (FIFO by sequence number), which keeps runs fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_set>
#include <vector>

#include "core/thread_annotations.h"
#include "sim/time.h"

namespace vini::sim {

/// Opaque handle identifying a scheduled event; used for cancellation.
using EventId = std::uint64_t;

/// A deterministic discrete-event scheduler.
///
/// Usage:
///   EventQueue q;
///   q.schedule(q.now() + kSecond, [] { ... });
///   q.runUntil(10 * kSecond);
class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Current simulation time.  Advances only inside run()/runUntil()/step().
  Time now() const {
    shard_.assertHeld();
    return now_;
  }

  /// Schedule `cb` to run at absolute time `when` (clamped to now()).
  /// Returns a handle that can be passed to cancel().
  EventId schedule(Time when, Callback cb) {
    return schedule(when, nullptr, std::move(cb));
  }

  /// As above, tagging the event with a static component label
  /// ("phys.link", "xorp.ospf", ...) that the event-loop profiler
  /// attributes handler time to.  `tag` must outlive the event — pass a
  /// string literal.
  EventId schedule(Time when, const char* tag, Callback cb);

  /// Schedule `cb` to run `delay` after the current time.
  EventId scheduleAfter(Duration delay, Callback cb) {
    shard_.assertHeld();
    return schedule(now_ + (delay > 0 ? delay : 0), nullptr, std::move(cb));
  }

  EventId scheduleAfter(Duration delay, const char* tag, Callback cb) {
    shard_.assertHeld();
    return schedule(now_ + (delay > 0 ? delay : 0), tag, std::move(cb));
  }

  /// Cancel a previously scheduled event.  Returns true if the event was
  /// still pending (i.e. it will no longer fire).
  bool cancel(EventId id);

  /// Execute the single next pending event.  Returns false if none remain.
  bool step();

  /// Run until the queue drains or `deadline` is reached.  Time is left at
  /// `deadline` if it was reached, else at the last event executed.
  void runUntil(Time deadline);

  /// Run until the queue drains completely.
  void run();

  /// Number of events still pending (cancelled events are excluded).
  std::size_t pendingCount() const {
    shard_.assertHeld();
    return pending_ids_.size();
  }

  /// Total number of events executed since construction.
  std::uint64_t executedCount() const {
    shard_.assertHeld();
    return executed_;
  }

  /// Wall-clock profiling hook: called after each executed event with
  /// the event's tag (nullptr for untagged) and the handler's wall time
  /// in nanoseconds.  The clock is read only while a hook is installed;
  /// pass nullptr to uninstall.  The hook observes only — simulated
  /// time and event order are unaffected.
  using ProfileHook = std::function<void(const char* tag, std::int64_t wall_ns)>;
  void setProfiler(ProfileHook hook) {
    shard_.assertHeld();
    profiler_ = std::move(hook);
  }

  /// Time-advance observation hook: called whenever now() is about to
  /// advance — before the event at the new time executes, and at the
  /// runUntil() deadline clamp — with the old and new time (from < to).
  /// Observers therefore see simulation state as of `to`⁻, i.e. with no
  /// event at `to` applied yet.  The hook observes only (the metric
  /// sampler in obs/ is the intended client); pass nullptr to uninstall.
  using AdvanceHook = std::function<void(Time from, Time to)>;
  void setAdvanceObserver(AdvanceHook hook) {
    shard_.assertHeld();
    advance_ = std::move(hook);
  }

 private:
  struct Entry {
    Time when = 0;
    EventId id = 0;
    const char* tag = nullptr;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;  // FIFO among equal timestamps
    }
  };

  /// Pop the earliest entry off the heap (moves it out; well-defined,
  /// unlike moving from std::priority_queue::top()).
  Entry popEntry();

  // The queue is the unit the sharded engine distributes: one queue per
  // worker shard, owned exclusively by it.  Everything below is
  // shard-owned; cross-shard event handoff will go through an explicit
  // mailbox, never by touching another shard's members.
  core::ShardToken shard_;
  // cross-shard: read by every layer via now(); sampled by observers.
  Time now_ VINI_GUARDED_BY(shard_) = 0;
  EventId next_id_ VINI_GUARDED_BY(shard_) = 1;
  std::uint64_t executed_ VINI_GUARDED_BY(shard_) = 0;
  // A std::make_heap/push_heap/pop_heap-managed binary heap.  We manage
  // it by hand instead of using std::priority_queue so entries can be
  // *moved* out on pop: priority_queue::top() returns a const reference,
  // and the const_cast-then-move idiom it forces is UB-adjacent.
  // cross-shard: remote schedule() calls will land here via the mailbox.
  std::vector<Entry> heap_ VINI_GUARDED_BY(shard_);
  std::unordered_set<EventId> pending_ids_ VINI_GUARDED_BY(shard_);
  std::unordered_set<EventId> cancelled_ VINI_GUARDED_BY(shard_);
  ProfileHook profiler_ VINI_GUARDED_BY(shard_);
  AdvanceHook advance_ VINI_GUARDED_BY(shard_);
};

/// A repeating timer built on EventQueue; cancels cleanly on destruction.
///
/// Used by protocol implementations (OSPF hellos, BGP keepalives, traffic
/// generators) that need a periodic callback which can be rescheduled or
/// stopped at any point.
class PeriodicTimer {
 public:
  PeriodicTimer(EventQueue& queue, Duration period, std::function<void()> fn)
      : queue_(queue), period_(period), fn_(std::move(fn)) {}
  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Arm the timer; first firing occurs one period from now.
  void start();
  /// Disarm the timer; no further firings.
  void stop();
  /// Change the period; takes effect from the next (re)scheduling.
  void setPeriod(Duration period) { period_ = period; }
  Duration period() const { return period_; }
  bool running() const { return running_; }

 private:
  void fire();

  EventQueue& queue_;
  Duration period_;
  std::function<void()> fn_;
  EventId pending_ = 0;
  bool running_ = false;
};

/// A one-shot timer that can be re-armed; models protocol hold timers
/// (e.g. the OSPF router-dead interval) that are repeatedly pushed back.
class OneShotTimer {
 public:
  OneShotTimer(EventQueue& queue, std::function<void()> fn)
      : queue_(queue), fn_(std::move(fn)) {}
  ~OneShotTimer() { cancel(); }

  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  /// (Re)arm the timer to fire `delay` from now, replacing any pending firing.
  void armAfter(Duration delay);
  /// Disarm; no firing until re-armed.
  void cancel();
  bool pending() const { return pending_ != 0; }

 private:
  EventQueue& queue_;
  std::function<void()> fn_;
  EventId pending_ = 0;
};

}  // namespace vini::sim
