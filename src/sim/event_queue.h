// Discrete-event engine.
//
// The EventQueue is the heart of the substrate: every physical link
// transmission, CPU scheduling decision, protocol timer, and application
// action is an event.  Events at equal timestamps execute in scheduling
// order (FIFO by sequence number), which keeps runs fully deterministic.
//
// Storage model (the bench_engine hot path):
//
//   * Callbacks live in a slab of reusable records (`slots_` + a free
//     list), each holding a small-buffer-optimized InlineCallback — a
//     scheduled event with captures up to 64 bytes costs zero heap
//     allocations, and a fired or cancelled slot is recycled in place.
//   * The EventId handle encodes its slab slot in the low bits and a
//     monotone sequence number in the high bits, so cancel() finds its
//     record and step() detects stale keys by a single id comparison —
//     the engine keeps no hash map at all.
//   * The priority structure orders lightweight 16-byte keys
//     {when, id}, not the records themselves, so sift/scan moves stay
//     inside a few cache lines.
//   * Two interchangeable priority structures: a 4-ary heap (default,
//     O(log n), fully general; 4-ary rather than binary because the
//     four children of a node share a cache line, halving the miss
//     depth of a sift on large queues) and a calendar queue (Brown
//     1988: O(1) amortized at high event rates when timestamps are
//     roughly uniform, as under saturating traffic).  Both pop in
//     exactly the same (when, id) total order, so a run is
//     byte-identical under either — scripts/check.sh diffs same-seed
//     exports across the two to enforce it, and bench_engine measures
//     them against each other.
//   * cancel() releases the callback (and everything it captured)
//     eagerly and leaves only a tombstone key behind; tombstones are
//     compacted away whenever they outnumber live keys.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/thread_annotations.h"
#include "sim/callback.h"
#include "sim/time.h"

namespace vini::sim {

class ShardRuntime;

/// Opaque handle identifying a scheduled event; used for cancellation.
/// Handles are unique for the lifetime of their queue and monotonically
/// increasing in scheduling order; 0 is never a valid handle.
using EventId = std::uint64_t;

/// Small interned id for the physical node an event belongs to —
/// the would-be worker shard key of the parallel engine.  Components
/// intern their node name once (internNodeTag) and pass the tag on the
/// node-attributed schedule overloads; kNoNode marks events with no
/// single owning node (global timers, topology-wide reroutes).
using NodeTag = std::uint16_t;
inline constexpr NodeTag kNoNode = 0xFFFF;

/// Priority-structure implementations selectable at construction.
enum class QueueImpl {
  kHeap,      ///< implicit 4-ary min-heap over the key vector
  kCalendar,  ///< calendar queue: bucketed by timestamp, O(1) amortized
};

/// Stable lowercase name for reports and BENCH_engine.json.
const char* queueImplName(QueueImpl impl);

/// A deterministic discrete-event scheduler.
///
/// Usage:
///   EventQueue q;                         // 4-ary heap
///   EventQueue q(QueueImpl::kCalendar);   // calendar queue
///   q.schedule(q.now() + kSecond, [] { ... });
///   q.runUntil(10 * kSecond);
class EventQueue {
 public:
  /// Event callbacks capture at most a component pointer, a shared
  /// packet handle, and a span id on the hot path; 64 inline bytes
  /// covers that with headroom (a stray std::function also fits).
  using Callback = InlineCallback<64>;

  EventQueue();  // out of line: members need ShardRuntime complete
  explicit EventQueue(QueueImpl impl);
  /// Sharded construction: `threads` worker contexts execute the run
  /// once finalizeSharding() freezes the lane set.  threads == 0 is the
  /// classic single-threaded engine (byte-identical to an EventQueue
  /// built without the parameter); threads == 1 runs the sharded
  /// schedule serially — the determinism gate's reference run.
  EventQueue(QueueImpl impl, int threads);
  ~EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  QueueImpl impl() const {
    shard_.assertHeld();
    return impl_;
  }

  /// Current simulation time.  Advances only inside run()/runUntil()/step().
  /// From inside a sharded worker lane this is the lane's local time
  /// (the timestamp of the event currently executing).
  Time now() const {
    if (worker_ctx_.queue == this) return workerNow();
    shard_.assertHeld();
    return now_;
  }

  /// Schedule `cb` to run at absolute time `when` (clamped to now()).
  /// Returns a handle that can be passed to cancel().
  EventId schedule(Time when, Callback cb) {
    return schedule(when, nullptr, std::move(cb));
  }

  /// As above, tagging the event with a static component label
  /// ("phys.link", "xorp.ospf", ...) that the event-loop profiler
  /// attributes handler time to.  `tag` must outlive the event — pass a
  /// string literal.
  EventId schedule(Time when, const char* tag, Callback cb) {
    return schedule(when, tag, kNoNode, std::move(cb));
  }

  /// As above, additionally attributing the event to a physical node
  /// (from internNodeTag).  Attribution is passive bookkeeping for the
  /// shard-readiness telemetry: per-node executed counts, the
  /// cross-node scheduling ratio, and the parallelism profiler all key
  /// off it, and a run is byte-identical with or without it.
  EventId schedule(Time when, const char* tag, NodeTag node, Callback cb);

  /// Schedule `cb` to run `delay` after the current time.  Routed
  /// through now()/schedule() so the overloads work identically from
  /// the main thread and from sharded worker lanes.
  EventId scheduleAfter(Duration delay, Callback cb) {
    return schedule(now() + (delay > 0 ? delay : 0), nullptr, kNoNode,
                    std::move(cb));
  }

  EventId scheduleAfter(Duration delay, const char* tag, Callback cb) {
    return schedule(now() + (delay > 0 ? delay : 0), tag, kNoNode,
                    std::move(cb));
  }

  EventId scheduleAfter(Duration delay, const char* tag, NodeTag node,
                        Callback cb) {
    return schedule(now() + (delay > 0 ? delay : 0), tag, node, std::move(cb));
  }

  /// Cancel a previously scheduled event.  Returns true if the event was
  /// still pending (i.e. it will no longer fire).  The callback and all
  /// state it captured are released immediately, not when the event's
  /// timestamp is reached — a repeatedly re-armed hold timer therefore
  /// pins O(1) memory, not one dead record per re-arm.
  bool cancel(EventId id);

  /// Execute the single next pending event.  Returns false if none remain.
  bool step();

  /// Run until the queue drains or `deadline` is reached.  Time is left at
  /// `deadline` if it was reached, else at the last event executed.
  void runUntil(Time deadline);

  /// Run until the queue drains completely.
  void run();

  // -- Sharded execution ------------------------------------------------------

  /// Freeze the lane set (one lane per interned node tag) and the
  /// conservative lookahead window, and spawn the worker pool.  Call
  /// after world construction (every component has interned its node
  /// tag) and before the first run; no-op when the queue was built with
  /// threads == 0.  `lookahead` is the minimum cross-node propagation
  /// delay (PhysNetwork::minPropagation()); values < 1 ns are clamped.
  void finalizeSharding(Duration lookahead);

  /// True when this queue executes rounds through the shard runtime.
  bool sharded() const { return shard_rt_ != nullptr; }
  int shardThreads() const { return shard_threads_; }
  std::size_t shardLaneCount() const;

  /// Lane the calling thread is currently executing (any queue), or -1
  /// outside sharded lane execution.  The observability layer routes
  /// per-lane recording off this.
  static int currentShardLane() { return worker_ctx_.lane_index; }

  /// Number of events still pending (cancelled events are excluded).
  std::size_t pendingCount() const {
    shard_.assertHeld();
    return live_;
  }

  /// Number of keys resident in the priority structure, *including*
  /// cancelled tombstones awaiting compaction — the memory the engine
  /// actually pins.
  std::size_t storageCount() const {
    shard_.assertHeld();
    return impl_ == QueueImpl::kHeap ? heap_.size() : cal_count_;
  }

  /// Total number of events executed since construction.
  std::uint64_t executedCount() const {
    shard_.assertHeld();
    return executed_;
  }

  /// High-water marks of pendingCount() / storageCount() since
  /// construction (BENCH_engine.json's peak columns).
  std::uint64_t peakPendingCount() const {
    shard_.assertHeld();
    return peak_pending_;
  }
  std::uint64_t peakStorageCount() const {
    shard_.assertHeld();
    return peak_storage_;
  }

  /// Slab occupancy: total slots ever allocated / slots currently free.
  /// (slabSlotCount - slabFreeCount = live events; the gap to
  /// storageCount is the tombstone population.)
  std::size_t slabSlotCount() const {
    shard_.assertHeld();
    return slots_.size();
  }
  std::size_t slabFreeCount() const {
    shard_.assertHeld();
    return free_slots_.size();
  }

  // -- Per-node event attribution (shard-readiness telemetry) ---------------

  /// Intern a physical node name, returning the tag the node-attributed
  /// schedule overloads take.  Re-interning the same name returns the
  /// same tag.  Cold path: components intern once at construction.
  NodeTag internNodeTag(const std::string& name);
  std::size_t nodeTagCount() const {
    shard_.assertHeld();
    return node_tag_names_.size();
  }
  const std::string& nodeTagName(NodeTag tag) const;

  /// Events executed that were attributed to `tag` / to no node.
  std::uint64_t nodeExecutedCount(NodeTag tag) const;
  std::uint64_t unattributedExecutedCount() const {
    shard_.assertHeld();
    return executed_unattributed_;
  }

  /// Of the events scheduled *from inside* a node-attributed handler
  /// targeting a node-attributed event: how many stayed on the same
  /// node vs. crossed to another.  The cross/total ratio bounds how
  /// chatty a sharded run would be.
  std::uint64_t sameNodeScheduledCount() const {
    shard_.assertHeld();
    return same_node_scheduled_;
  }
  std::uint64_t crossNodeScheduledCount() const {
    shard_.assertHeld();
    return cross_node_scheduled_;
  }
  /// Smallest (when - now) over all cross-node schedules, i.e. the
  /// tightest delivery deadline a conservative lookahead window must
  /// respect; 0 when no cross-node event was ever scheduled.
  Duration minCrossNodeDelay() const {
    shard_.assertHeld();
    return cross_node_scheduled_ ? min_cross_delay_ : 0;
  }

  /// Wall-clock profiling hook: called after each executed event with
  /// the event's tag (nullptr for untagged), its node attribution
  /// (kNoNode for unattributed), and the handler's wall time in
  /// nanoseconds.  The clock is read only while a hook is installed;
  /// pass nullptr to uninstall.  The hook observes only — simulated
  /// time and event order are unaffected.
  using ProfileHook =
      std::function<void(const char* tag, NodeTag node, std::int64_t wall_ns)>;
  void setProfiler(ProfileHook hook) {
    shard_.assertHeld();
    profiler_ = std::move(hook);
  }

  /// One executed event, as seen by the introspection hook: its
  /// execution time, the time it was scheduled at, and the node
  /// attribution of the event and of the handler that scheduled it.
  struct ExecEvent {
    Time when = 0;
    Time sched_at = 0;
    NodeTag node = kNoNode;
    NodeTag sched_from = kNoNode;
  };
  /// Introspection hook: called for every executed event, before its
  /// callback runs (the parallelism profiler is the intended client).
  /// Passive — it must not schedule or cancel; pass nullptr to
  /// uninstall.
  using IntrospectHook = std::function<void(const ExecEvent&)>;
  void setIntrospector(IntrospectHook hook) {
    shard_.assertHeld();
    introspect_ = std::move(hook);
  }

  /// Time-advance observation hook: called whenever now() is about to
  /// advance — before the event at the new time executes, and at the
  /// runUntil() deadline clamp — with the old and new time (from < to).
  /// Observers therefore see simulation state as of `to`⁻, i.e. with no
  /// event at `to` applied yet.  The hook observes only (the metric
  /// sampler in obs/ is the intended client); pass nullptr to uninstall.
  using AdvanceHook = std::function<void(Time from, Time to)>;
  void setAdvanceObserver(AdvanceHook hook) {
    shard_.assertHeld();
    advance_ = std::move(hook);
  }

 private:
  friend class ShardRuntime;

  /// EventId layout: [ sequence : 40 | slab slot : 24 ].  The sequence
  /// is monotone per queue (ids order by scheduling time, giving the
  /// FIFO tie-break), and the slot gives cancel()/step() an O(1),
  /// hash-free path to the event's record.  A stale handle — fired,
  /// cancelled, or fabricated — is detected because its slot no longer
  /// stores the same id.
  static constexpr unsigned kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  static std::uint32_t slotOf(EventId id) {
    return static_cast<std::uint32_t>(id & kSlotMask);
  }
  static std::uint64_t seqOf(EventId id) { return id >> kSlotBits; }

  /// What the priority structures order: 16 bytes, trivially copyable.
  /// (when, id) is a total order — ids are unique and monotone — so any
  /// correct min-extraction yields the same deterministic sequence.
  struct Key {
    Time when = 0;
    EventId id = 0;
  };
  static bool keyEarlier(const Key& a, const Key& b) {
    if (a.when != b.when) return a.when < b.when;
    return a.id < b.id;  // FIFO among equal timestamps
  }

  /// Slab record: the callback (captures inline up to 64 bytes), the
  /// profiler tag, the node attribution (owning node, scheduling node,
  /// scheduling time — the parallelism profiler's raw material), and
  /// the full id currently occupying the slot (0 when free — the
  /// generation check).  Slots are recycled through free_slots_.
  struct Slot {
    Callback cb;
    const char* tag = nullptr;
    EventId id = 0;
    /// Sharded mode: the worker-issued staged id this event was
    /// scheduled under (0 otherwise) — releasing the slot erases the
    /// staged-id mapping so the translation table stays bounded.
    EventId alias = 0;
    Time sched_at = 0;
    NodeTag node = kNoNode;
    NodeTag sched_from = kNoNode;
  };

  std::uint32_t allocSlot() VINI_REQUIRES(shard_);
  void releaseSlot(std::uint32_t slot) VINI_REQUIRES(shard_);
  /// True while `key` refers to a live (not cancelled, not fired) event.
  bool keyLive(const Key& key) const VINI_REQUIRES(shard_) {
    return slots_[slotOf(key.id)].id == key.id;
  }

  /// Earliest live key, skimming cancelled tombstones off the top; null
  /// when empty.  The returned pointer is invalidated by any mutation.
  const Key* peekLive() VINI_REQUIRES(shard_);
  const Key* peekMinRaw() VINI_REQUIRES(shard_);
  Key popMinRaw() VINI_REQUIRES(shard_);

  // 4-ary heap primitives (impl_ == kHeap only).
  void heapSiftUp(std::size_t i) VINI_REQUIRES(shard_);
  void heapSiftDown(std::size_t i) VINI_REQUIRES(shard_);
  void heapRebuild() VINI_REQUIRES(shard_);

  /// Drop every tombstone from the priority structure once they
  /// outnumber live keys (dead_keys_ > storage/2).
  void maybeCompact() VINI_REQUIRES(shard_);

  // Calendar-queue internals (impl_ == kCalendar only).  Buckets are
  // kept sorted by (when, id); the scan position (cal_bucket_, cal_top_)
  // walks year windows exactly as in Brown's original design.
  void calResetScan(Time t) VINI_REQUIRES(shard_);
  void calInsert(const Key& k) VINI_REQUIRES(shard_);
  const Key* calPeek() VINI_REQUIRES(shard_);
  void calMaybeResize() VINI_REQUIRES(shard_);
  void calRebuild(std::size_t nbuckets) VINI_REQUIRES(shard_);

  // The queue is the unit the sharded engine distributes: one queue per
  // worker shard, owned exclusively by it.  Everything below is
  // shard-owned; cross-shard event handoff will go through an explicit
  // mailbox, never by touching another shard's members.
  core::ShardToken shard_;
  QueueImpl impl_ VINI_GUARDED_BY(shard_) = QueueImpl::kHeap;
  // cross-shard: read by every layer via now(); sampled by observers.
  Time now_ VINI_GUARDED_BY(shard_) = 0;
  std::uint64_t next_seq_ VINI_GUARDED_BY(shard_) = 1;
  std::uint64_t executed_ VINI_GUARDED_BY(shard_) = 0;
  std::uint64_t peak_pending_ VINI_GUARDED_BY(shard_) = 0;
  std::uint64_t peak_storage_ VINI_GUARDED_BY(shard_) = 0;
  /// Live (pending, uncancelled) events.
  std::size_t live_ VINI_GUARDED_BY(shard_) = 0;
  /// Tombstones: cancelled keys still sitting in the priority structure.
  std::size_t dead_keys_ VINI_GUARDED_BY(shard_) = 0;
  /// Set by ~EventQueue before the slab drains: dropping a stored
  /// callback can release the last owner of an object whose destructor
  /// cancels its own timer on this queue, and that re-entrant cancel()
  /// must be a no-op rather than touch half-destroyed members.
  bool tearing_down_ VINI_GUARDED_BY(shard_) = false;

  // Slab storage for callbacks; keys refer into it by index.
  std::vector<Slot> slots_ VINI_GUARDED_BY(shard_);
  std::vector<std::uint32_t> free_slots_ VINI_GUARDED_BY(shard_);

  // 4-ary heap structure (heapSiftUp/heapSiftDown-managed).
  // cross-shard: remote schedule() calls will land here via the mailbox.
  std::vector<Key> heap_ VINI_GUARDED_BY(shard_);

  // Calendar structure.
  std::vector<std::vector<Key>> cal_buckets_ VINI_GUARDED_BY(shard_);
  std::size_t cal_count_ VINI_GUARDED_BY(shard_) = 0;
  Time cal_width_ VINI_GUARDED_BY(shard_) = kMillisecond;
  std::size_t cal_bucket_ VINI_GUARDED_BY(shard_) = 0;
  Time cal_top_ VINI_GUARDED_BY(shard_) = 0;

  ProfileHook profiler_ VINI_GUARDED_BY(shard_);
  AdvanceHook advance_ VINI_GUARDED_BY(shard_);
  IntrospectHook introspect_ VINI_GUARDED_BY(shard_);

  // Per-node attribution state.  All passive counters: they never feed
  // back into event order, so a run is byte-identical with or without
  // node-attributed schedules.
  /// Interned node names; a NodeTag indexes this table.
  // cross-shard: the tag table is global so merged telemetry agrees on ids.
  std::vector<std::string> node_tag_names_ VINI_GUARDED_BY(shard_);
  /// Events executed per node tag (same indexing as node_tag_names_).
  std::vector<std::uint64_t> node_executed_ VINI_GUARDED_BY(shard_);
  std::uint64_t executed_unattributed_ VINI_GUARDED_BY(shard_) = 0;
  std::uint64_t same_node_scheduled_ VINI_GUARDED_BY(shard_) = 0;
  std::uint64_t cross_node_scheduled_ VINI_GUARDED_BY(shard_) = 0;
  Duration min_cross_delay_ VINI_GUARDED_BY(shard_) = 0;
  /// Node attribution of the handler currently executing (kNoNode
  /// outside step() or under an unattributed handler).
  NodeTag exec_node_ VINI_GUARDED_BY(shard_) = kNoNode;

  // -- Sharded dispatch -------------------------------------------------------
  //
  // Worker lanes reach the queue through the same public API as the
  // rest of the simulation; a thread-local context installed around
  // lane execution reroutes now()/schedule()/cancel() to the lane's
  // local state (defined in shard.cc, where the lane types are
  // complete).  The context is per (thread, queue): a worker executing
  // for queue A leaves any other queue's behavior untouched.
  struct ShardWorkerCtx {
    const EventQueue* queue = nullptr;
    void* lane = nullptr;  ///< ShardRuntime::Lane*
    int lane_index = -1;
  };
  static thread_local ShardWorkerCtx worker_ctx_;  // defined in event_queue.cc

  Time workerNow() const;
  EventId workerSchedule(Time when, const char* tag, NodeTag node,
                         Callback cb);
  bool workerCancel(EventId id);
  /// cancel() body for the main thread (the classic path plus
  /// translation of worker-issued sharded ids).
  bool cancelMain(EventId id, bool audit);

  /// Worker threads requested at construction (0 = classic engine).
  int shard_threads_ = 0;
  /// Set by finalizeSharding(): interning new node tags afterwards is a
  /// V106 audit error (the lane set must stay frozen).
  bool tags_frozen_ VINI_GUARDED_BY(shard_) = false;
  std::unique_ptr<ShardRuntime> shard_rt_;
};

/// A repeating timer built on EventQueue; cancels cleanly on destruction.
///
/// Used by protocol implementations (OSPF hellos, BGP keepalives, traffic
/// generators) that need a periodic callback which can be rescheduled or
/// stopped at any point.
class PeriodicTimer {
 public:
  PeriodicTimer(EventQueue& queue, Duration period, std::function<void()> fn)
      : queue_(queue), period_(period), fn_(std::move(fn)) {}
  /// Node-attributed variant: firings carry the profiler tag and the
  /// owning node, so a sharded engine keeps them on the node's lane
  /// instead of forcing a serial round.
  PeriodicTimer(EventQueue& queue, Duration period, const char* tag,
                NodeTag node, std::function<void()> fn)
      : queue_(queue), period_(period), fn_(std::move(fn)), tag_(tag),
        node_(node) {}
  ~PeriodicTimer() { stop(); }

  PeriodicTimer(const PeriodicTimer&) = delete;
  PeriodicTimer& operator=(const PeriodicTimer&) = delete;

  /// Arm the timer; first firing occurs one period from now.
  void start();
  /// Disarm the timer; no further firings.
  void stop();
  /// Change the period; takes effect from the next (re)scheduling.
  void setPeriod(Duration period) { period_ = period; }
  Duration period() const { return period_; }
  bool running() const { return running_; }

 private:
  void fire();

  EventQueue& queue_;
  Duration period_;
  std::function<void()> fn_;
  const char* tag_ = nullptr;
  NodeTag node_ = kNoNode;
  EventId pending_ = 0;
  bool running_ = false;
};

/// A one-shot timer that can be re-armed; models protocol hold timers
/// (e.g. the OSPF router-dead interval) that are repeatedly pushed back.
class OneShotTimer {
 public:
  OneShotTimer(EventQueue& queue, std::function<void()> fn)
      : queue_(queue), fn_(std::move(fn)) {}
  /// Node-attributed variant (see PeriodicTimer).
  OneShotTimer(EventQueue& queue, const char* tag, NodeTag node,
               std::function<void()> fn)
      : queue_(queue), fn_(std::move(fn)), tag_(tag), node_(node) {}
  ~OneShotTimer() { cancel(); }

  OneShotTimer(const OneShotTimer&) = delete;
  OneShotTimer& operator=(const OneShotTimer&) = delete;

  /// (Re)arm the timer to fire `delay` from now, replacing any pending firing.
  void armAfter(Duration delay);
  /// Disarm; no firing until re-armed.
  void cancel();
  bool pending() const { return pending_ != 0; }

 private:
  EventQueue& queue_;
  std::function<void()> fn_;
  const char* tag_ = nullptr;
  NodeTag node_ = kNoNode;
  EventId pending_ = 0;
};

}  // namespace vini::sim
