// Deterministic random-number utilities.
//
// Experiments must be repeatable (Section 3.4 of the paper: strict resource
// guarantees exist "to ensure repeatability of the experiments"), so every
// stochastic component draws from an explicitly seeded generator owned by
// the experiment, never from global state.
#pragma once

#include <cstdint>
#include <random>

#include "sim/time.h"

namespace vini::sim {

/// Seeded pseudo-random source with the distributions the substrate needs.
class Random {
 public:
  explicit Random(std::uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double uniform01() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniformInt(std::int64_t lo, std::int64_t hi) {
    return std::uniform_int_distribution<std::int64_t>(lo, hi)(engine_);
  }

  /// Exponential with the given mean (> 0).
  double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Bernoulli trial with probability p of returning true.
  bool chance(double p) { return uniform01() < p; }

  /// Uniform duration in [lo, hi).
  Duration uniformDuration(Duration lo, Duration hi) {
    if (hi <= lo) return lo;
    return lo + static_cast<Duration>(uniform01() * static_cast<double>(hi - lo));
  }

  /// Exponential duration with the given mean, optionally capped.
  Duration exponentialDuration(Duration mean, Duration cap = -1) {
    auto d = static_cast<Duration>(exponential(static_cast<double>(mean)));
    if (cap >= 0 && d > cap) d = cap;
    return d;
  }

  /// Derive an independent child generator (stable given call order).
  Random fork() { return Random(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace vini::sim
