// Measurement containers used by every experiment.
//
// SampleStats accumulates scalar observations (throughput per run, RTT per
// probe) and reports the aggregates the paper's tables use: min / avg /
// max, standard deviation, and `mdev` as computed by ping(8).
// TimeSeries records (time, value) points for figure-style output.
#pragma once

#include <cmath>
#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "sim/time.h"

namespace vini::sim {

/// Streaming scalar statistics over a set of observations.
class SampleStats {
 public:
  void add(double x);
  void clear();

  std::size_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  double sum() const { return sum_; }

  /// Sample standard deviation (n-1 denominator); 0 with fewer than 2 points.
  double stddev() const;

  /// Mean absolute deviation around the mean, as ping(8) reports ("mdev").
  /// ping computes sqrt(E[x^2] - E[x]^2), i.e. the population deviation.
  double mdev() const;

 private:
  // Deviations accumulate via Welford's recurrence (mean_, m2_) rather
  // than a raw sum of squares: for samples with mean >> deviation (RTTs
  // recorded as absolute nanoseconds), sum_sq - sum^2/n cancels
  // catastrophically and can even go negative.  sum_ is kept alongside
  // so mean() still reports sum/n, identical to the old code.
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A time-indexed series of scalar samples, e.g. "bytes received so far"
/// or "RTT of the probe sent at time t".  Supports CSV dumping so every
/// figure bench can emit a replottable artifact.
class TimeSeries {
 public:
  struct Point {
    Time t = 0;
    double value = 0.0;
  };

  explicit TimeSeries(std::string name = {}) : name_(std::move(name)) {}

  void add(Time t, double value) { points_.push_back({t, value}); }
  void clear() { points_.clear(); }

  const std::string& name() const { return name_; }
  const std::vector<Point>& points() const { return points_; }
  std::size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }

  /// Aggregate statistics over the values (ignores timestamps).
  SampleStats stats() const;

  /// Values restricted to t in [from, to).
  SampleStats statsBetween(Time from, Time to) const;

  /// Write "seconds,value" rows (header included) for external plotting.
  void writeCsv(std::ostream& os) const;

 private:
  std::string name_;
  std::vector<Point> points_;
};

/// Interarrival jitter as iperf computes it (RFC 1889 Section 6.3.1):
/// J += (|D(i-1,i)| - J) / 16, where D is the difference between the
/// receive spacing and the send spacing of consecutive packets.
class JitterEstimator {
 public:
  /// Feed one received packet (its send timestamp and receive timestamp).
  void onPacket(Time sent, Time received);

  /// Current smoothed jitter, in milliseconds.
  double jitterMs() const { return jitter_ms_; }
  std::size_t packets() const { return packets_; }

 private:
  bool have_prev_ = false;
  Time prev_transit_ = 0;
  double jitter_ms_ = 0.0;
  std::size_t packets_ = 0;
};

}  // namespace vini::sim
