// A small-buffer-optimized callable for the event engine's hot path.
//
// Every simulated packet hop schedules events whose callbacks capture a
// handful of pointers (a component `this`, a shared packet handle, a
// span id).  std::function's inline buffer (16 bytes on libstdc++) is
// too small for those captures, so the pre-overhaul engine paid one
// heap allocation + free per scheduled event — the single largest cost
// in the bench_engine profile.  InlineCallback stores captures up to
// `InlineBytes` directly in the event record (slab storage inside
// EventQueue), falling back to the heap only for oversized captures.
//
// Differences from std::function, all deliberate:
//   * move-only (events are scheduled once and fired once; copying a
//     callback is always a bug);
//   * void() signature only (the engine's event shape);
//   * no target_type()/target() introspection.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace vini::sim {

template <std::size_t InlineBytes>
class InlineCallback {
 public:
  InlineCallback() noexcept = default;
  InlineCallback(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fitsInline<Fn>()) {
      ::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));
      ops_ = inlineOps<Fn>();
    } else {
      ::new (static_cast<void*>(storage_)) Fn*(new Fn(std::forward<F>(f)));
      ops_ = heapOps<Fn>();
    }
  }

  InlineCallback(InlineCallback&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) ops_->relocate(other.storage_, storage_);
    other.ops_ = nullptr;
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) ops_->relocate(other.storage_, storage_);
      other.ops_ = nullptr;
    }
    return *this;
  }

  InlineCallback& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { reset(); }

  /// Destroy the held callable (and any state it captured) immediately.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(storage_); }

 private:
  /// Per-callable-type operation table; one static instance per Fn.
  struct Ops {
    void (*invoke)(void* storage);
    /// Move-construct into `to` and destroy the source — used by the
    /// move constructor/assignment, so it must not throw.
    void (*relocate)(void* from, void* to);
    void (*destroy)(void* storage);
  };

  template <typename Fn>
  static constexpr bool fitsInline() {
    return sizeof(Fn) <= InlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn>
  static const Ops* inlineOps() {
    static constexpr Ops kOps = {
        [](void* s) { (*std::launder(reinterpret_cast<Fn*>(s)))(); },
        [](void* from, void* to) {
          Fn* f = std::launder(reinterpret_cast<Fn*>(from));
          ::new (to) Fn(std::move(*f));
          f->~Fn();
        },
        [](void* s) { std::launder(reinterpret_cast<Fn*>(s))->~Fn(); }};
    return &kOps;
  }

  template <typename Fn>
  static const Ops* heapOps() {
    static constexpr Ops kOps = {
        [](void* s) { (**std::launder(reinterpret_cast<Fn**>(s)))(); },
        [](void* from, void* to) {
          Fn** p = std::launder(reinterpret_cast<Fn**>(from));
          ::new (to) Fn*(*p);
        },
        [](void* s) { delete *std::launder(reinterpret_cast<Fn**>(s)); }};
    return &kOps;
  }

  alignas(std::max_align_t) unsigned char storage_[InlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace vini::sim
