#include "sim/stats.h"

#include <algorithm>

namespace vini::sim {

void SampleStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  sum_sq_ += x * x;
}

void SampleStats::clear() { *this = SampleStats{}; }

double SampleStats::stddev() const {
  if (n_ < 2) return 0.0;
  const double n = static_cast<double>(n_);
  const double var = (sum_sq_ - sum_ * sum_ / n) / (n - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double SampleStats::mdev() const {
  if (n_ == 0) return 0.0;
  const double n = static_cast<double>(n_);
  const double m = sum_ / n;
  const double var = sum_sq_ / n - m * m;
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

SampleStats TimeSeries::stats() const {
  SampleStats s;
  for (const Point& p : points_) s.add(p.value);
  return s;
}

SampleStats TimeSeries::statsBetween(Time from, Time to) const {
  SampleStats s;
  for (const Point& p : points_) {
    if (p.t >= from && p.t < to) s.add(p.value);
  }
  return s;
}

void TimeSeries::writeCsv(std::ostream& os) const {
  os << "seconds," << (name_.empty() ? "value" : name_) << "\n";
  for (const Point& p : points_) {
    os << toSeconds(p.t) << "," << p.value << "\n";
  }
}

void JitterEstimator::onPacket(Time sent, Time received) {
  ++packets_;
  const Time transit = received - sent;
  if (have_prev_) {
    double d = toMillis(transit - prev_transit_);
    if (d < 0) d = -d;
    jitter_ms_ += (d - jitter_ms_) / 16.0;
  }
  prev_transit_ = transit;
  have_prev_ = true;
}

}  // namespace vini::sim
