#include "sim/stats.h"

#include <algorithm>

namespace vini::sim {

void SampleStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void SampleStats::clear() { *this = SampleStats{}; }

double SampleStats::stddev() const {
  if (n_ < 2) return 0.0;
  const double var = m2_ / (static_cast<double>(n_) - 1.0);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

double SampleStats::mdev() const {
  // ping(8) semantics: population deviation, sqrt(E[x^2] - E[x]^2) ==
  // sqrt(m2/n) — Welford just computes it without the cancellation.
  if (n_ == 0) return 0.0;
  const double var = m2_ / static_cast<double>(n_);
  return var > 0.0 ? std::sqrt(var) : 0.0;
}

SampleStats TimeSeries::stats() const {
  SampleStats s;
  for (const Point& p : points_) s.add(p.value);
  return s;
}

SampleStats TimeSeries::statsBetween(Time from, Time to) const {
  SampleStats s;
  for (const Point& p : points_) {
    if (p.t >= from && p.t < to) s.add(p.value);
  }
  return s;
}

void TimeSeries::writeCsv(std::ostream& os) const {
  os << "seconds," << (name_.empty() ? "value" : name_) << "\n";
  for (const Point& p : points_) {
    os << toSeconds(p.t) << "," << p.value << "\n";
  }
}

void JitterEstimator::onPacket(Time sent, Time received) {
  ++packets_;
  const Time transit = received - sent;
  if (have_prev_) {
    double d = toMillis(transit - prev_transit_);
    if (d < 0) d = -d;
    jitter_ms_ += (d - jitter_ms_) / 16.0;
  }
  prev_transit_ = transit;
  have_prev_ = true;
}

}  // namespace vini::sim
