// Minimal leveled logger, prefixed with simulation time.
//
// Logging is off by default so tests and benches run quietly; experiments
// flip it on per component ("ospf", "click", ...) when debugging.
#pragma once

#include <iostream>
#include <sstream>
#include <string>
#include <unordered_set>

#include "sim/time.h"

namespace vini::sim {

enum class LogLevel { kDebug, kInfo, kWarn, kError, kOff };

/// Global log configuration (a deliberate singleton: logging is the one
/// piece of state that is not part of experiment repeatability).
class Log {
 public:
  static Log& instance();

  void setLevel(LogLevel level) { level_ = level; }
  LogLevel level() const { return level_; }

  /// Restrict output to the named components; empty set means "all".
  void enableComponent(const std::string& name) { components_.insert(name); }
  void clearComponents() { components_.clear(); }

  bool shouldLog(LogLevel level, const std::string& component) const {
    if (level < level_) return false;
    return components_.empty() || components_.count(component) != 0;
  }

  void write(Time now, LogLevel level, const std::string& component,
             const std::string& message);

 private:
  Log() = default;
  LogLevel level_ = LogLevel::kOff;
  std::unordered_set<std::string> components_;
};

/// Log a message if the component/level is enabled.
void logAt(Time now, LogLevel level, const std::string& component,
           const std::string& message);

}  // namespace vini::sim
