// Conservative-lookahead sharded execution (see shard.h for the
// architecture and the determinism argument).
//
// Thread roles, per round:
//
//   main    peekLive/popMinRaw extraction (global order), barrier
//           apply, audits, counter folds — everything that mutates the
//           global priority structure or the slab.
//   workers execLane() over lane-local run lists / heaps / mailboxes,
//           plus *read-only* probes of the global slab (cancel liveness
//           checks).  The slab and priority structure are frozen for
//           the duration of a window, so those reads race with nothing.
//
// Hand-off points (all of which establish happens-before):
//   extraction -> workers   next_lane_ release store, acquired by the
//                           workers' fetch_add claims
//   workers -> barrier      done_ under mu_, awaited by the main thread
#include "sim/shard.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <utility>

#include "check/audit.h"
#include "core/thread_annotations.h"

namespace vini::sim {

namespace {
constexpr Time kMaxTime = std::numeric_limits<Time>::max();
}  // namespace

int currentShardLane() { return EventQueue::currentShardLane(); }

ShardRuntime::ShardRuntime(EventQueue& queue, int threads)
    : queue_(queue), threads_(threads < 1 ? 1 : threads) {}

ShardRuntime::~ShardRuntime() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  cv_work_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ShardRuntime::finalize(Duration lookahead) {
  queue_.shard_.assertHeld();
  lookahead_ = lookahead > 0 ? lookahead : 1;
  const std::size_t n = queue_.node_tag_names_.size();
  // The sharded id layout reserves an 8-bit lane band (lane + 1), so at
  // most 254 lanes fit; larger topologies need a wider band first.
  VINI_AUDIT_CHECK(
      n <= 254,
      (check::Diagnostic{check::Severity::kError, "V106", "shard runtime",
                         "more than 254 node lanes (sharded id lane band "
                         "is 8-bit)"}));
  lanes_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    lanes_[i].index = static_cast<std::uint32_t>(i);
  }
  active_.reserve(n);
  // The main thread participates, so N requested contexts mean N - 1
  // spawned workers; extra workers beyond the lane count just idle.
  for (int i = 1; i < threads_; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

void ShardRuntime::runUntil(Time deadline) {
  queue_.shard_.assertHeld();
  EventQueue& q = queue_;
  for (;;) {
    const EventQueue::Key* top = q.peekLive();
    if (top == nullptr || top->when > deadline) break;
    const Time anchor = top->when;
    // Advance global time to the window anchor first: the sampler (the
    // advance hook's client) observes boundary state here, on the main
    // thread, with every worker quiescent.
    if (anchor > q.now_) {
      if (q.advance_) q.advance_(q.now_, anchor);
      q.now_ = anchor;
    }
    roundAt(anchor, deadline);
  }
  if (q.now_ < deadline) {
    if (q.advance_) q.advance_(q.now_, deadline);
    q.now_ = deadline;
  }
}

void ShardRuntime::roundAt(Time anchor, Time deadline) {
  queue_.shard_.assertHeld();
  EventQueue& q = queue_;
  Time horizon =
      anchor > kMaxTime - lookahead_ ? kMaxTime : anchor + lookahead_;
  // runUntil()'s contract: nothing past the deadline executes.
  if (deadline < kMaxTime && horizon > deadline + 1) horizon = deadline + 1;

  // Extract every node-attributed event below the horizon, in the
  // global deterministic (when, id) order — the extraction sequence,
  // and therefore each lane's run list, is a pure function of the
  // event stream.  An unattributed (kNoNode) event stops the window:
  // those execute serially between windows, where they may touch
  // global state.
  std::size_t extracted = 0;
  for (;;) {
    const EventQueue::Key* top = q.peekLive();
    if (top == nullptr || top->when >= horizon) break;
    const std::uint32_t slot = EventQueue::slotOf(top->id);
    const NodeTag node = q.slots_[slot].node;
    if (node == kNoNode || node >= lanes_.size()) {
      if (extracted == 0) {
        q.step();  // a lone serial event; the next round re-anchors
        return;
      }
      horizon = top->when;  // the serial event bounds this window
      break;
    }
    const EventQueue::Key key = q.popMinRaw();
    Lane& lane = lanes_[node];
    if (!lane.active) {
      lane.active = true;
      lane.local_now = anchor;
      active_.push_back(&lane);
    }
    EventQueue::Slot& s = q.slots_[slot];
    lane.run.push_back(RunEntry{std::move(s.cb), s.tag, key.when, key.id,
                                s.sched_at, s.sched_from, false});
    q.releaseSlot(slot);
    --q.live_;
    ++extracted;
  }
  if (extracted == 0) return;

  window_end_ = horizon;
  ++rounds_;
  dispatchLanes();
  applyBarrier();
}

void ShardRuntime::dispatchLanes() {
  queue_.shard_.assertHeld();
  const bool hooks = static_cast<bool>(queue_.profiler_) ||
                     static_cast<bool>(queue_.introspect_);
  core::beginShardParallelPhase();
  if (threads_ <= 1 || hooks || active_.size() <= 1) {
    // Serial lane execution — canonically equivalent, because lanes
    // are independent within a window, and required when profiling or
    // introspection hooks (which are not thread-safe) are installed.
    for (Lane* lane : active_) execLane(*lane, hooks);
  } else {
    const std::size_t count = active_.size();
    std::uint64_t round = 0;
    {
      std::lock_guard<std::mutex> lk(mu_);
      round = ++round_;
      // The release store publishes the extraction writes to workers
      // that claim lanes through the cursor; ordering it inside the
      // lock means a worker that wakes on round_ always sees it.  The
      // round tag in the cursor invalidates any straggler claim still
      // in flight from the previous round.
      cursor_.store(round << kCursorRoundShift, std::memory_order_release);
      active_count_ = count;
      done_ = 0;
    }
    cv_work_.notify_all();
    claimLanes(false, count, round);
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [&] { return done_ == count; });
  }
  core::endShardParallelPhase();
}

bool ShardRuntime::claimSlot(std::uint64_t round, std::size_t count,
                             std::size_t& out) {
  std::uint64_t cur = cursor_.load(std::memory_order_acquire);
  for (;;) {
    if ((cur >> kCursorRoundShift) != round) return false;  // stale round
    const std::size_t i = static_cast<std::size_t>(cur & kCursorIndexMask);
    if (i >= count) return false;  // round exhausted
    if (cursor_.compare_exchange_weak(cur, cur + 1,
                                      std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      out = i;
      return true;
    }
  }
}

void ShardRuntime::claimLanes(bool run_hooks, std::size_t count,
                              std::uint64_t round) {
  std::size_t i = 0;
  while (claimSlot(round, count, i)) {
    execLane(*active_[i], run_hooks);
    bool all_done = false;
    {
      std::lock_guard<std::mutex> lk(mu_);
      // done_ belongs to the round the claim validated; a stale thread
      // can no longer get here, so the count is exact.
      ++done_;
      all_done = done_ == count;
    }
    if (all_done) cv_done_.notify_all();
  }
}

void ShardRuntime::workerLoop() {
  std::uint64_t seen = 0;
  for (;;) {
    std::size_t count = 0;
    {
      std::unique_lock<std::mutex> lk(mu_);
      cv_work_.wait(lk, [&] { return stop_ || round_ != seen; });
      if (stop_) return;
      seen = round_;
      count = active_count_;
    }
    claimLanes(false, count, seen);
  }
}

void ShardRuntime::execLane(Lane& lane, bool run_hooks) {
  // Install the lane context: the ShardToken claims every engine
  // object this lane touches for the duration of the window, and the
  // queue's public API reroutes to the lane-local state below.
  core::setShardContext((static_cast<std::uint64_t>(lane.index) + 1) * 2);
  EventQueue::worker_ctx_ =
      EventQueue::ShardWorkerCtx{&queue_, &lane, static_cast<int>(lane.index)};
  for (;;) {
    while (lane.run_head < lane.run.size() && lane.run[lane.run_head].dead) {
      ++lane.run_head;
    }
    const bool have_run = lane.run_head < lane.run.size();
    bool use_local = false;
    if (!lane.lheap.empty()) {
      if (!have_run ||
          lane.lheap.front().when < lane.run[lane.run_head].when) {
        // Timestamp ties go to the run list: extracted events carry
        // earlier global ids than anything scheduled inside the
        // window, so this is exactly the classic FIFO tie-break.
        use_local = true;
      }
    } else if (!have_run) {
      break;
    }
    EventQueue::Callback cb;
    const char* tag = nullptr;
    Time when = 0;
    Time sched_at = 0;
    NodeTag sched_from = kNoNode;
    if (use_local) {
      std::pop_heap(lane.lheap.begin(), lane.lheap.end(), localKeyAfter);
      const LocalKey lk = lane.lheap.back();
      lane.lheap.pop_back();
      LocalEvent& ev = lane.lslab[lk.idx];
      if (!ev.live) {  // cancelled inside the window
        lane.lfree.push_back(lk.idx);
        continue;
      }
      cb = std::move(ev.cb);
      tag = ev.tag;
      when = lk.when;
      sched_at = ev.sched_at;
      sched_from = ev.sched_from;
      ev.cb.reset();
      ev.live = false;
      lane.lfree.push_back(lk.idx);
    } else {
      RunEntry& e = lane.run[lane.run_head++];
      cb = std::move(e.cb);
      tag = e.tag;
      when = e.when;
      sched_at = e.sched_at;
      sched_from = e.sched_from;
    }
    // Lane-local monotonicity (the V100 invariant, deferred: workers
    // never touch the audit sink — the barrier raises it).
    if (when < lane.local_now) lane.monotonic_violation = true;
    lane.local_now = when;
    ++lane.executed;
    if (run_hooks && queue_.introspect_) {
      queue_.introspect_(EventQueue::ExecEvent{
          when, sched_at, static_cast<NodeTag>(lane.index), sched_from});
    }
    if (run_hooks && queue_.profiler_) {
      const auto start = std::chrono::steady_clock::now();
      cb();
      const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      // The callback may have detached the profiler; re-check.
      if (queue_.profiler_) {
        queue_.profiler_(tag, static_cast<NodeTag>(lane.index), wall);
      }
    } else {
      cb();
    }
  }
  lane.run.clear();
  lane.run_head = 0;
  EventQueue::worker_ctx_ = EventQueue::ShardWorkerCtx{};
  core::setShardContext(0);
}

EventId ShardRuntime::workerSchedule(Lane& lane, Time when, const char* tag,
                                     NodeTag node, EventQueue::Callback cb) {
  if (when < lane.local_now) when = lane.local_now;
  // Same accounting the classic engine keeps in schedule(): a lane
  // handler is by construction attributed to the lane's node.
  if (node != kNoNode) {
    if (node == lane.index) {
      ++lane.same_sched;
    } else {
      const Duration delay = when - lane.local_now;
      if (lane.cross_sched == 0 || delay < lane.min_cross_delay) {
        lane.min_cross_delay = delay;
      }
      ++lane.cross_sched;
    }
  }
  if (node == lane.index && when < window_end_) {
    // Same lane, inside the window: executes locally, this round.
    std::uint32_t idx;
    if (!lane.lfree.empty()) {
      idx = lane.lfree.back();
      lane.lfree.pop_back();
    } else {
      idx = static_cast<std::uint32_t>(lane.lslab.size());
      lane.lslab.emplace_back();
    }
    LocalEvent& ev = lane.lslab[idx];
    ev.cb = std::move(cb);
    ev.tag = tag;
    ev.when = when;
    ev.sched_at = lane.local_now;
    ev.sched_from = static_cast<NodeTag>(lane.index);
    ev.seq = lane.local_seq++ & 0x7FFFFFFFu;  // id carries 31 seq bits
    ev.live = true;
    lane.lheap.push_back(LocalKey{when, lane.local_rank++, idx});
    std::push_heap(lane.lheap.begin(), lane.lheap.end(), localKeyAfter);
    return localId(lane.index, ev.seq, idx);
  }
  // Everything else — same-lane beyond the horizon, cross-lane,
  // unattributed — is staged and merged into the global structure at
  // the barrier, in deterministic lane-major issue order.
  const EventId id = stagedId(lane.index, lane.staged_seq++);
  lane.staged.push_back(StagedOp{when, tag, node, std::move(cb), id, false});
  return id;
}

bool ShardRuntime::workerCancel(Lane& lane, EventId id) {
  if (id == 0) return false;
  if (isShardId(id)) {
    const std::uint32_t id_lane = laneOf(id);
    if (id_lane != lane.index) {
      // Another lane's handle: resolution must wait for the barrier
      // (its window-local state is not ours to touch).  Report "not
      // cancelled" — if the event is window-local it executes anyway,
      // and a staged target is cancelled quietly at the barrier.
      ++lane.cross_cancels;
      lane.staged_cancels.push_back(id);
      return false;
    }
    if ((id & kStagedBit) != 0) {
      // Our own staged id: still in this round's mailbox, or already
      // remapped to a global id by an earlier barrier.
      for (auto it = lane.staged.rbegin(); it != lane.staged.rend(); ++it) {
        if (it->staged_id == id) {
          if (it->cancelled) {
            ++lane.stale_cancels;
            return false;
          }
          it->cancelled = true;
          it->cb.reset();
          return true;
        }
      }
      const auto it = staged_id_map_.find(id);  // frozen during windows
      if (it == staged_id_map_.end()) {
        ++lane.stale_cancels;
        return false;
      }
      return stageGlobalCancel(lane, it->second);
    }
    // Our own window-local id.
    const std::uint32_t idx = static_cast<std::uint32_t>(id & 0xFFFFFFu);
    const std::uint32_t seq =
        static_cast<std::uint32_t>(id >> 24) & 0x7FFFFFFFu;
    if (idx >= lane.lslab.size() || !lane.lslab[idx].live ||
        lane.lslab[idx].seq != seq) {
      ++lane.stale_cancels;
      return false;
    }
    lane.lslab[idx].live = false;
    lane.lslab[idx].cb.reset();
    return true;
  }
  // A classic id: it may sit in our own run list (extracted this
  // round), or still in the (frozen) global structure.
  for (std::size_t i = lane.run_head; i < lane.run.size(); ++i) {
    if (lane.run[i].id == id) {
      if (lane.run[i].dead) {
        ++lane.stale_cancels;
        return false;
      }
      lane.run[i].dead = true;
      lane.run[i].cb.reset();
      return true;
    }
  }
  for (std::size_t i = 0; i < lane.run_head; ++i) {
    if (lane.run[i].id == id) {
      ++lane.stale_cancels;  // already executed inside this window
      return false;
    }
  }
  return stageGlobalCancel(lane, id);
}

bool ShardRuntime::stageGlobalCancel(Lane& lane, EventId real) {
  // The global slab is frozen for the window, so this read races with
  // nothing; the mutation itself waits for the barrier.
  const std::uint32_t slot = EventQueue::slotOf(real);
  if (slot >= queue_.slots_.size() || queue_.slots_[slot].id != real) {
    ++lane.stale_cancels;  // fired, cancelled, or extracted to a lane
    return false;
  }
  lane.staged_cancels.push_back(real);
  return true;
}

bool ShardRuntime::mainCancel(EventId id) {
  queue_.shard_.assertHeld();
  if ((id & kStagedBit) != 0) {
    const auto it = staged_id_map_.find(id);
    if (it != staged_id_map_.end()) {
      return queue_.cancelMain(it->second, /*audit=*/true);
    }
  }
  // A window-local id, or a staged id whose event already resolved:
  // the deterministic stale-handle path, same contract as classic.
  VINI_AUDIT_CHECK(
      false,
      (check::Diagnostic{check::Severity::kWarning, "V101",
                         "event " + std::to_string(id),
                         "cancel() of a sharded event that already fired or "
                         "was already cancelled"}));
  return false;
}

void ShardRuntime::dropAlias(EventId staged_id) {
  staged_id_map_.erase(staged_id);
}

void ShardRuntime::applyBarrier() {
  queue_.shard_.assertHeld();
  EventQueue& q = queue_;
  // Phase 1: staged schedules, lane-major then issue order — a fixed
  // merge order, independent of worker interleaving, so the global
  // sequence numbers (and every later FIFO tie-break) are too.
  std::uint64_t round_violations = 0;
  for (Lane* lp : active_) {
    for (StagedOp& op : lp->staged) {
      if (op.cancelled) continue;
      if (op.when < window_end_) {
        // A cross-lane event landed inside the conservative window:
        // the lookahead bound (min cross-node propagation) was not
        // respected by some schedule.  Execution stays deterministic —
        // the event runs at its true time in a later round — but the
        // target lane may already have acted past it, so flag it.
        if (op.node != kNoNode) {
          ++round_violations;
        } else {
          ++deferred_unattributed_;
        }
      }
      const EventId real =
          q.schedule(op.when, op.tag, op.node, std::move(op.cb));
      q.slots_[EventQueue::slotOf(real)].alias = op.staged_id;
      staged_id_map_.emplace(op.staged_id, real);
    }
    lp->staged.clear();
  }
  VINI_AUDIT_CHECK(
      round_violations == 0,
      (check::Diagnostic{
          check::Severity::kWarning, "V108",
          "shard round " + std::to_string(rounds_),
          std::to_string(round_violations) +
              " cross-lane event(s) scheduled inside the conservative "
              "lookahead window"}));
  lookahead_violations_ += round_violations;
  // Phase 2: staged cancels, same order.  Quiet: a target that already
  // resolved is the expected outcome of a deferred cancel, not V101.
  for (Lane* lp : active_) {
    for (const EventId id : lp->staged_cancels) {
      if (isShardId(id)) {
        if ((id & kStagedBit) != 0) {
          const auto it = staged_id_map_.find(id);
          if (it != staged_id_map_.end()) {
            q.cancelMain(it->second, /*audit=*/false);
          }
        }
        // A foreign window-local id died with its window: stale, done.
      } else {
        q.cancelMain(id, /*audit=*/false);
      }
    }
    lp->staged_cancels.clear();
  }
  raiseBarrierAudits();
  // Phase 3: fold per-lane tallies into the queue's telemetry (the
  // same counters the classic engine keeps inline) and reset.
  for (Lane* lp : active_) {
    Lane& lane = *lp;
    q.executed_ += lane.executed;
    q.node_executed_[lane.index] += lane.executed;
    q.same_node_scheduled_ += lane.same_sched;
    if (lane.cross_sched != 0) {
      if (q.cross_node_scheduled_ == 0 ||
          lane.min_cross_delay < q.min_cross_delay_) {
        q.min_cross_delay_ = lane.min_cross_delay;
      }
      q.cross_node_scheduled_ += lane.cross_sched;
    }
    cross_lane_cancels_ += lane.cross_cancels;
    lane.executed = 0;
    lane.same_sched = 0;
    lane.cross_sched = 0;
    lane.min_cross_delay = 0;
    lane.stale_cancels = 0;
    lane.bad_cancels = 0;
    lane.cross_cancels = 0;
    lane.monotonic_violation = false;
    lane.local_rank = 0;
    lane.active = false;
  }
  active_.clear();
}

void ShardRuntime::raiseBarrierAudits() {
#if VINI_AUDIT_ENABLED
  std::uint64_t stale = 0;
  bool monotonic_ok = true;
  for (const Lane* lp : active_) {
    stale += lp->stale_cancels;
    if (lp->monotonic_violation) monotonic_ok = false;
  }
  VINI_AUDIT_CHECK(
      monotonic_ok,
      (check::Diagnostic{check::Severity::kError, "V100",
                         "shard round " + std::to_string(rounds_),
                         "lane-local time ran backwards inside a window"}));
  VINI_AUDIT_CHECK(
      stale == 0,
      (check::Diagnostic{
          check::Severity::kWarning, "V109",
          "shard round " + std::to_string(rounds_),
          std::to_string(stale) +
              " cancel(s) of already-resolved events inside worker lanes"}));
#endif
}

// -- EventQueue's worker-context trampolines ---------------------------------
//
// Defined here, where ShardRuntime::Lane is complete.

Time EventQueue::workerNow() const {
  const auto* lane =
      static_cast<const ShardRuntime::Lane*>(worker_ctx_.lane);
  return lane->local_now;
}

EventId EventQueue::workerSchedule(Time when, const char* tag, NodeTag node,
                                   Callback cb) {
  auto* lane = static_cast<ShardRuntime::Lane*>(worker_ctx_.lane);
  return shard_rt_->workerSchedule(*lane, when, tag, node, std::move(cb));
}

bool EventQueue::workerCancel(EventId id) {
  auto* lane = static_cast<ShardRuntime::Lane*>(worker_ctx_.lane);
  return shard_rt_->workerCancel(*lane, id);
}

}  // namespace vini::sim
