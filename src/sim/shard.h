// Parallel sharded execution for the EventQueue.
//
// The ShardRuntime shards a run across worker threads by physical node
// (one *lane* per interned NodeTag) with conservative lookahead
// windows, the architecture ROADMAP item 2 sketches and the
// obs::ParallelismProfiler models:
//
//   * Each round anchors a window at T (the earliest pending event) and
//     closes it at b1 = T + W, where W is the minimum cross-node link
//     propagation delay (PhysNetwork::minPropagation()).  Every
//     node-attributed event with timestamp < b1 is extracted — in the
//     global deterministic (when, id) order — into its lane's run list.
//   * Lanes execute concurrently on a pool of workers (work-stealing
//     over an atomic cursor; the main thread participates).  An event a
//     lane schedules onto *its own* node inside the window executes
//     locally, in a window-local heap; everything else — same-lane
//     events at or beyond b1, cross-lane events (which conservative
//     lookahead guarantees land at >= b1), unattributed events — is
//     staged in per-lane mailboxes.
//   * At the barrier the main thread applies the mailboxes in a fixed
//     order (lane by lane, issue order within a lane), so the global
//     structure's contents — and therefore every later window — are
//     independent of worker interleaving.
//   * Events with no owning node (kNoNode: fault injections, topology
//     reroutes, protocol timers that never took a node tag) execute
//     serially on the main thread between windows, where they may
//     safely touch global state.
//
// Determinism: lane assignment (by node tag), extraction order (global
// (when, id) order), intra-lane execution order ((when, rank) with
// ranks that encode the classic FIFO tie-break), and barrier merge
// order (lane-major, issue-order) are all pure functions of the event
// stream — never of thread count or OS scheduling.  Same seed, same
// bytes, any --threads value; scripts/check.sh stage 5h byte-diffs
// 1-, 2- and 8-thread exports to enforce it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "sim/event_queue.h"

namespace vini::sim {

/// Lane the calling thread is currently executing for the sharded
/// engine, or -1 when it is not inside a lane (the observability layer
/// routes recording to per-lane partitions off this).
int currentShardLane();

class ShardRuntime {
 public:
  ShardRuntime(EventQueue& queue, int threads);
  ~ShardRuntime();

  ShardRuntime(const ShardRuntime&) = delete;
  ShardRuntime& operator=(const ShardRuntime&) = delete;

  /// Freeze the lane set (one lane per interned node tag), fix the
  /// conservative lookahead window, and spawn the worker pool.  Must be
  /// called after every component interned its node tag and before the
  /// first sharded runUntil().
  void finalize(Duration lookahead);
  bool finalized() const { return !lanes_.empty(); }

  int threads() const { return threads_; }
  std::size_t laneCount() const { return lanes_.size(); }
  Duration lookahead() const { return lookahead_; }

  /// Rounds executed and the counters the determinism audits fold in.
  std::uint64_t roundsExecuted() const { return rounds_; }
  std::uint64_t lookaheadViolations() const { return lookahead_violations_; }
  std::uint64_t deferredUnattributed() const { return deferred_unattributed_; }
  std::uint64_t crossLaneCancels() const { return cross_lane_cancels_; }

  // -- Sharded id layout ------------------------------------------------------
  //
  // Ids the runtime issues from worker context carry a lane band in the
  // top byte so they can never collide with the classic
  // [seq:40|slot:24] encoding (whose top byte stays zero while
  // next_seq_ < 2^31, audited in sharded mode):
  //
  //   window-local: [lane+1 : 8 | 0 : 1 | seq : 31 | slab index : 24]
  //   staged:       [lane+1 : 8 | 1 : 1 | seq : 55]
  //
  // A staged id is remapped to the real global id the barrier apply
  // assigns (staged_id_map_), so handles stay cancellable forever; a
  // window-local id dies with its window and any later cancel is the
  // deterministic stale-handle path.
  static constexpr unsigned kLaneShift = 56;
  static constexpr std::uint64_t kStagedBit = 1ull << 55;
  static bool isShardId(EventId id) { return (id >> kLaneShift) != 0; }

 private:
  friend class EventQueue;

  struct RunEntry {
    EventQueue::Callback cb;
    const char* tag = nullptr;
    Time when = 0;
    EventId id = 0;
    Time sched_at = 0;
    NodeTag sched_from = kNoNode;
    bool dead = false;
  };

  struct LocalEvent {
    EventQueue::Callback cb;
    const char* tag = nullptr;
    Time when = 0;
    Time sched_at = 0;
    NodeTag sched_from = kNoNode;
    std::uint32_t seq = 0;  ///< generation check for window-local ids
    bool live = false;
  };

  /// Window-local heap key: rank is the lane's issue order, which is
  /// the classic FIFO tie-break among window-local events (run-list
  /// entries always win timestamp ties — they carry earlier global
  /// ids than anything scheduled inside the window).
  struct LocalKey {
    Time when = 0;
    std::uint64_t rank = 0;
    std::uint32_t idx = 0;
  };
  /// Comparator for std::push_heap/pop_heap (a min-heap needs "after").
  static bool localKeyAfter(const LocalKey& a, const LocalKey& b) {
    if (a.when != b.when) return a.when > b.when;
    return a.rank > b.rank;
  }

  struct StagedOp {
    Time when = 0;
    const char* tag = nullptr;
    NodeTag node = kNoNode;
    EventQueue::Callback cb;
    EventId staged_id = 0;
    bool cancelled = false;
  };

  struct Lane {
    std::uint32_t index = 0;  ///< == the NodeTag this lane owns

    // Filled by the main thread during extraction, drained by exec.
    std::vector<RunEntry> run;
    std::size_t run_head = 0;

    // Window-local events (same lane, timestamp inside the window).
    std::vector<LocalKey> lheap;
    std::vector<LocalEvent> lslab;
    std::vector<std::uint32_t> lfree;
    std::uint64_t local_rank = 0;

    // Mailboxes the barrier applies in deterministic order.
    std::vector<StagedOp> staged;
    std::vector<EventId> staged_cancels;

    Time local_now = 0;
    bool active = false;

    // Persistent id generators (ids must stay unique across rounds).
    std::uint32_t local_seq = 1;
    std::uint64_t staged_seq = 1;

    // Per-round results, folded into the queue's counters at the
    // barrier (workers never touch shared counters or the audit sink).
    std::uint64_t executed = 0;
    std::uint64_t same_sched = 0;
    std::uint64_t cross_sched = 0;
    Duration min_cross_delay = 0;
    std::uint64_t stale_cancels = 0;
    std::uint64_t bad_cancels = 0;
    std::uint64_t cross_cancels = 0;
    bool monotonic_violation = false;
  };

  // -- Main-thread round machinery -------------------------------------------
  void runUntil(Time deadline);
  /// One round at window anchor T: either a single serial (kNoNode)
  /// step or a full extract / parallel-execute / barrier-apply cycle.
  void roundAt(Time T, Time deadline);
  void dispatchLanes();
  void applyBarrier();
  void raiseBarrierAudits();

  // -- Worker-side entry points (reached via EventQueue's dispatch) -----------
  //
  // These run on worker threads against lane-local state (plus frozen
  // reads of the global slab), outside the static analysis's capability
  // model; the runtime ShardToken epochs police them instead.
  Time workerNow(const Lane& lane) const { return lane.local_now; }
  EventId workerSchedule(Lane& lane, Time when, const char* tag, NodeTag node,
                         EventQueue::Callback cb) VINI_NO_THREAD_SAFETY_ANALYSIS;
  bool workerCancel(Lane& lane, EventId id) VINI_NO_THREAD_SAFETY_ANALYSIS;
  /// Stage a cancel of a classic (global-structure) id from a lane:
  /// reads the frozen slab to answer the caller, defers the mutation.
  bool stageGlobalCancel(Lane& lane, EventId real)
      VINI_NO_THREAD_SAFETY_ANALYSIS;

  /// Cancel of a sharded id arriving on the main thread (a serial-burst
  /// handler cancelling a worker-issued handle).
  bool mainCancel(EventId id);
  void dropAlias(EventId staged_id);

  void execLane(Lane& lane, bool run_hooks) VINI_NO_THREAD_SAFETY_ANALYSIS;
  /// Work-steal lanes off the cursor.  `count` is the round's lane
  /// count and `round` its generation, both snapshotted under mu_ —
  /// workers must never read active_ directly (a straggler's last
  /// empty probe could race the main thread's post-round cleanup).
  void claimLanes(bool run_hooks, std::size_t count, std::uint64_t round);
  /// CAS-claim the next lane index of `round`, or return false if the
  /// cursor has moved to a later round or the round is exhausted.  A
  /// plain fetch_add cursor is not enough: a straggler's leftover
  /// increment from round N would silently consume — and with a stale,
  /// smaller lane count, *skip* — a slot of round N+1, deadlocking the
  /// barrier (observed on a single-core host, where the descheduling
  /// window between a worker's last execLane and its final empty probe
  /// is wide).
  bool claimSlot(std::uint64_t round, std::size_t count, std::size_t& out);
  void workerLoop();

  static EventId localId(std::uint32_t lane, std::uint32_t seq,
                         std::uint32_t idx) {
    return (static_cast<EventId>(lane + 1) << kLaneShift) |
           (static_cast<EventId>(seq & 0x7FFFFFFFu) << 24) | idx;
  }
  static EventId stagedId(std::uint32_t lane, std::uint64_t seq) {
    return (static_cast<EventId>(lane + 1) << kLaneShift) | kStagedBit |
           (seq & (kStagedBit - 1));
  }
  static std::uint32_t laneOf(EventId id) {
    return static_cast<std::uint32_t>(id >> kLaneShift) - 1;
  }

  EventQueue& queue_;
  const int threads_;
  Duration lookahead_ = 1;
  std::vector<Lane> lanes_;

  /// staged id -> real global id, populated at barrier apply, erased
  /// when the real event fires or is cancelled (Slot::alias back-ref).
  std::unordered_map<EventId, EventId> staged_id_map_;

  std::uint64_t rounds_ = 0;
  std::uint64_t lookahead_violations_ = 0;
  std::uint64_t deferred_unattributed_ = 0;
  std::uint64_t cross_lane_cancels_ = 0;

  // Pool state.  No waits are timed (srclint V203): workers block on
  // the round counter and the main thread blocks on the done counter.
  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_work_;
  std::condition_variable cv_done_;
  std::uint64_t round_ = 0;
  bool stop_ = false;
  std::vector<Lane*> active_;
  /// active_.size() snapshotted under mu_ for the live round; the only
  /// lane-count value worker threads may read.
  std::size_t active_count_ = 0;
  /// Round-tagged work cursor: (round << kCursorRoundShift) | index.
  /// The 20-bit index band bounds claims per round at ~1M — lanes cap
  /// at 254 and each participant adds at most one empty probe, so the
  /// band never saturates; 44 round bits outlast any plausible run.
  static constexpr unsigned kCursorRoundShift = 20;
  static constexpr std::uint64_t kCursorIndexMask =
      (std::uint64_t{1} << kCursorRoundShift) - 1;
  std::atomic<std::uint64_t> cursor_{0};
  std::size_t done_ = 0;
  Time window_end_ = 0;
};

}  // namespace vini::sim
