#include "sim/event_queue.h"

#include <algorithm>
#include <chrono>
#include <limits>
#include <string>
#include <utility>

#include "check/audit.h"
#include "sim/shard.h"

namespace vini::sim {

namespace {

/// Starting bucket count for the calendar; grows/shrinks with load.
constexpr std::size_t kCalMinBuckets = 16;

}  // namespace

thread_local EventQueue::ShardWorkerCtx EventQueue::worker_ctx_;

const char* queueImplName(QueueImpl impl) {
  return impl == QueueImpl::kHeap ? "heap" : "calendar";
}

EventQueue::EventQueue() : EventQueue(QueueImpl::kHeap) {}

EventQueue::EventQueue(QueueImpl impl) : impl_(impl) {
  shard_.assertHeld();
  if (impl_ == QueueImpl::kCalendar) {
    cal_buckets_.resize(kCalMinBuckets);
    calResetScan(0);
  }
}

EventQueue::EventQueue(QueueImpl impl, int threads) : EventQueue(impl) {
  shard_threads_ = threads > 0 ? threads : 0;
}

EventQueue::~EventQueue() {
  // Join the worker pool first: no other thread may touch the queue
  // while it tears down.
  shard_rt_.reset();
  // Drain stored callbacks while every member is still alive: dropping
  // a callback can destroy the last owner of a component (e.g. a TCP
  // connection kept alive only by its pending retransmit event), and
  // that component's destructor may cancel() its own timers on this
  // queue.  With tearing_down_ set those cancels return without
  // touching the slab or the priority structure.
  tearing_down_ = true;
  for (Slot& slot : slots_) slot.cb.reset();
}

void EventQueue::finalizeSharding(Duration lookahead) {
  shard_.assertHeld();
  if (shard_threads_ <= 0 || shard_rt_ != nullptr) return;
  tags_frozen_ = true;
  shard_rt_ = std::make_unique<ShardRuntime>(*this, shard_threads_);
  shard_rt_->finalize(lookahead);
}

std::size_t EventQueue::shardLaneCount() const {
  return shard_rt_ ? shard_rt_->laneCount() : 0;
}

std::uint32_t EventQueue::allocSlot() {
  if (free_slots_.empty()) {
    // The id encoding caps the slab at 2^24 concurrent events; a
    // simulation needing more has almost certainly leaked events.
    VINI_AUDIT_CHECK(
        slots_.size() <= kSlotMask,
        (check::Diagnostic{check::Severity::kError, "V104", "event queue",
                           "more than 2^24 concurrent pending events"}));
    slots_.emplace_back();
    return static_cast<std::uint32_t>(slots_.size() - 1);
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  return slot;
}

void EventQueue::releaseSlot(std::uint32_t slot) {
  slots_[slot].cb.reset();
  slots_[slot].tag = nullptr;
  slots_[slot].id = 0;
  if (slots_[slot].alias != 0) {
    if (shard_rt_) shard_rt_->dropAlias(slots_[slot].alias);
    slots_[slot].alias = 0;
  }
  slots_[slot].sched_at = 0;
  slots_[slot].node = kNoNode;
  slots_[slot].sched_from = kNoNode;
  free_slots_.push_back(slot);
}

NodeTag EventQueue::internNodeTag(const std::string& name) {
  shard_.assertHeld();
  for (std::size_t i = 0; i < node_tag_names_.size(); ++i) {
    if (node_tag_names_[i] == name) return static_cast<NodeTag>(i);
  }
  // V106: the lane set of a sharded run is frozen at finalizeSharding();
  // a *new* node name appearing afterwards would need a lane that does
  // not exist (its events would silently fall to the serial path).
  VINI_AUDIT_CHECK(
      !tags_frozen_,
      (check::Diagnostic{check::Severity::kError, "V106", "event queue",
                         "node tag '" + name +
                             "' interned after finalizeSharding froze the "
                             "lane set"}));
  // Linear scan: interning happens once per node at construction, and
  // topologies hold tens of nodes, not thousands.
  VINI_AUDIT_CHECK(
      node_tag_names_.size() < kNoNode,
      (check::Diagnostic{check::Severity::kError, "V105", "event queue",
                         "node tag table overflow (>= 65535 node names)"}));
  node_tag_names_.push_back(name);
  node_executed_.push_back(0);
  return static_cast<NodeTag>(node_tag_names_.size() - 1);
}

const std::string& EventQueue::nodeTagName(NodeTag tag) const {
  shard_.assertHeld();
  static const std::string kUnattributed = "-";
  if (tag == kNoNode || tag >= node_tag_names_.size()) return kUnattributed;
  return node_tag_names_[tag];
}

std::uint64_t EventQueue::nodeExecutedCount(NodeTag tag) const {
  shard_.assertHeld();
  if (tag == kNoNode || tag >= node_executed_.size()) return 0;
  return node_executed_[tag];
}

EventId EventQueue::schedule(Time when, const char* tag, NodeTag node,
                             Callback cb) {
  if (worker_ctx_.queue == this) {
    return workerSchedule(when, tag, node, std::move(cb));
  }
  shard_.assertHeld();
  if (when < now_) when = now_;
  // Sharded runs reserve the id's top byte for worker lane bands; the
  // classic encoding stays clear of it while the sequence fits 31 bits.
  if (shard_rt_) {
    VINI_AUDIT_CHECK(
        next_seq_ < (1ull << 31),
        (check::Diagnostic{check::Severity::kError, "V107", "event queue",
                           "sharded-mode event sequence space exhausted"}));
  }
  // Cross-node edge accounting: an attributed handler scheduling onto a
  // different attributed node is exactly the event a sharded engine
  // would have to hand off through a mailbox; its delay bounds the
  // conservative lookahead window.
  if (exec_node_ != kNoNode && node != kNoNode) {
    if (node == exec_node_) {
      ++same_node_scheduled_;
    } else {
      const Duration delay = when - now_;
      if (cross_node_scheduled_ == 0 || delay < min_cross_delay_) {
        min_cross_delay_ = delay;
      }
      ++cross_node_scheduled_;
    }
  }
  const std::uint32_t slot = allocSlot();
  const EventId id = (next_seq_++ << kSlotBits) | slot;
  slots_[slot].cb = std::move(cb);
  slots_[slot].tag = tag;
  slots_[slot].id = id;
  slots_[slot].sched_at = now_;
  slots_[slot].node = node;
  slots_[slot].sched_from = exec_node_;
  const Key key{when, id};
  if (impl_ == QueueImpl::kHeap) {
    heap_.push_back(key);
    heapSiftUp(heap_.size() - 1);
  } else {
    calInsert(key);
  }
  ++live_;
  if (live_ > peak_pending_) peak_pending_ = live_;
  const std::size_t storage =
      impl_ == QueueImpl::kHeap ? heap_.size() : cal_count_;
  if (storage > peak_storage_) peak_storage_ = storage;
  return id;
}

bool EventQueue::cancel(EventId id) {
  if (worker_ctx_.queue == this) return workerCancel(id);
  return cancelMain(id, /*audit=*/true);
}

bool EventQueue::cancelMain(EventId id, bool audit) {
  shard_.assertHeld();
  if (tearing_down_) return false;
  // A worker-issued id (lane band in the top byte) resolves through the
  // shard runtime's translation tables.
  if (shard_rt_ != nullptr && ShardRuntime::isShardId(id)) {
    return shard_rt_->mainCancel(id);
  }
  // Only events still awaiting execution can be cancelled: the handle
  // must still occupy its slab slot.
  const std::uint32_t slot = slotOf(id);
  if (id == 0 || slot >= slots_.size() || slots_[slot].id != id) {
    if (id != 0 && audit) {
      if (seqOf(id) == 0 || seqOf(id) >= next_seq_) {
        // V101 (error): this queue never issued `id` — the handle is
        // corrupt, crossed queues, or was fabricated.  Unlike
        // cancel-after-fire this can never be a benign race with the
        // event's own execution, so it is definitely a caller bug.
        VINI_AUDIT_CHECK(
            false,
            (check::Diagnostic{check::Severity::kError, "V101",
                               "event " + std::to_string(id),
                               "cancel() of an id this queue never issued"}));
      } else {
        // V101 (warning): cancelling an event that already fired (or was
        // already cancelled) is deterministic — it returns false — but
        // usually means the caller lost track of its handle.
        VINI_AUDIT_CHECK(
            false,
            (check::Diagnostic{check::Severity::kWarning, "V101",
                               "event " + std::to_string(id),
                               "cancel() of an event that already fired or "
                               "was already cancelled"}));
      }
    }
    return false;
  }
  // Release the callback — and any packet or component state it
  // captured — *now*; only a 16-byte tombstone key stays behind.
  releaseSlot(slot);
  --live_;
  ++dead_keys_;
  maybeCompact();
  return true;
}

void EventQueue::maybeCompact() {
  const std::size_t storage =
      impl_ == QueueImpl::kHeap ? heap_.size() : cal_count_;
  if (dead_keys_ * 2 <= storage) return;
  // Tombstones outnumber live keys: rebuild without them.  Removal
  // cannot change pop order — (when, id) is a total order, so any heap
  // arrangement of the surviving keys pops identically.
  if (impl_ == QueueImpl::kHeap) {
    std::erase_if(heap_, [this](const Key& k) { return !keyLive(k); });
    heapRebuild();
  } else {
    for (auto& bucket : cal_buckets_) {
      const std::size_t before = bucket.size();
      std::erase_if(bucket, [this](const Key& k) { return !keyLive(k); });
      cal_count_ -= before - bucket.size();
    }
  }
  dead_keys_ = 0;
}

// -- 4-ary heap ---------------------------------------------------------------
//
// An implicit d-ary min-heap with d = 4: children of node i are
// 4i+1..4i+4, which span one or two cache lines of 16-byte keys, so a
// sift touches half the depth a binary heap would for the same size.
// Pops always extract the exact (when, id) minimum, so heap arity is
// invisible to the simulation.

void EventQueue::heapSiftUp(std::size_t i) {
  const Key k = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!keyEarlier(k, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = k;
}

void EventQueue::heapSiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  const Key k = heap_[i];
  for (;;) {
    const std::size_t first = 4 * i + 1;
    if (first >= n) break;
    const std::size_t last = std::min(first + 4, n);
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (keyEarlier(heap_[c], heap_[best])) best = c;
    }
    if (!keyEarlier(heap_[best], k)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = k;
}

void EventQueue::heapRebuild() {
  if (heap_.size() < 2) return;
  // Floyd: sift internal nodes down, deepest first.
  for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
    heapSiftDown(i);
  }
}

// -- Calendar queue -----------------------------------------------------------

void EventQueue::calResetScan(Time t) {
  const auto idx =
      static_cast<std::uint64_t>(t) / static_cast<std::uint64_t>(cal_width_);
  cal_bucket_ = static_cast<std::size_t>(idx % cal_buckets_.size());
  cal_top_ = static_cast<Time>(idx + 1) * cal_width_;
}

void EventQueue::calInsert(const Key& k) {
  // An insert behind the scan position (possible because the scan sits
  // wherever the last pop left it) rewinds the scan to the new event.
  if (cal_count_ == 0 || k.when < cal_top_ - cal_width_) calResetScan(k.when);
  const auto idx = static_cast<std::uint64_t>(k.when) /
                   static_cast<std::uint64_t>(cal_width_);
  auto& bucket = cal_buckets_[static_cast<std::size_t>(idx % cal_buckets_.size())];
  bucket.insert(
      std::upper_bound(bucket.begin(), bucket.end(), k,
                       [](const Key& a, const Key& b) { return keyEarlier(a, b); }),
      k);
  ++cal_count_;
  calMaybeResize();
}

const EventQueue::Key* EventQueue::calPeek() {
  if (cal_count_ == 0) return nullptr;
  const std::size_t n = cal_buckets_.size();
  // Walk year windows from the scan position.  A bucket's front is its
  // earliest key; it wins iff it falls inside the current window
  // (events in the same window always share a bucket, so the first hit
  // is the global minimum).
  for (std::size_t i = 0; i < n; ++i) {
    const auto& bucket = cal_buckets_[cal_bucket_];
    if (!bucket.empty() && bucket.front().when < cal_top_) {
      return &bucket.front();
    }
    cal_bucket_ = (cal_bucket_ + 1) % n;
    cal_top_ += cal_width_;
  }
  // A whole year without a hit (sparse far-future events): direct-search
  // the minimum and jump the scan to it.
  const Key* min = nullptr;
  for (const auto& bucket : cal_buckets_) {
    if (!bucket.empty() && (min == nullptr || keyEarlier(bucket.front(), *min))) {
      min = &bucket.front();
    }
  }
  calResetScan(min->when);  // min's bucket becomes the scan bucket
  return min;
}

void EventQueue::calMaybeResize() {
  const std::size_t n = cal_buckets_.size();
  if (cal_count_ > 2 * n) {
    calRebuild(2 * n);
  } else if (n > kCalMinBuckets && cal_count_ * 4 < n) {
    calRebuild(n / 2);
  }
}

void EventQueue::calRebuild(std::size_t nbuckets) {
  std::vector<Key> all;
  all.reserve(cal_count_);
  for (auto& bucket : cal_buckets_) {
    all.insert(all.end(), bucket.begin(), bucket.end());
    bucket.clear();
  }
  std::sort(all.begin(), all.end(),
            [](const Key& a, const Key& b) { return keyEarlier(a, b); });
  // Brown's width rule, simplified: ~3x the mean gap over a head sample,
  // so a window holds a few events on average.
  if (all.size() >= 2) {
    const std::size_t sample = std::min<std::size_t>(all.size() - 1, 64);
    const Time span = all[sample].when - all[0].when;
    cal_width_ = std::max<Time>(1, 3 * span / static_cast<Time>(sample));
  }
  cal_buckets_.assign(nbuckets, {});
  calResetScan(all.empty() ? now_ : all[0].when);
  // Globally sorted insert order means every bucket stays sorted with
  // plain push_back.
  for (const Key& k : all) {
    const auto idx = static_cast<std::uint64_t>(k.when) /
                     static_cast<std::uint64_t>(cal_width_);
    cal_buckets_[static_cast<std::size_t>(idx % nbuckets)].push_back(k);
  }
}

// -- Min extraction, shared by both implementations ---------------------------

const EventQueue::Key* EventQueue::peekMinRaw() {
  if (impl_ == QueueImpl::kHeap) {
    return heap_.empty() ? nullptr : &heap_.front();
  }
  return calPeek();
}

EventQueue::Key EventQueue::popMinRaw() {
  if (impl_ == QueueImpl::kHeap) {
    const Key k = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) heapSiftDown(0);
    return k;
  }
  const Key* top = calPeek();  // positions cal_bucket_ at the minimum
  const Key k = *top;
  auto& bucket = cal_buckets_[cal_bucket_];
  bucket.erase(bucket.begin());
  --cal_count_;
  calMaybeResize();
  return k;
}

const EventQueue::Key* EventQueue::peekLive() {
  for (;;) {
    const Key* top = peekMinRaw();
    if (top == nullptr) return nullptr;
    if (dead_keys_ != 0 && !keyLive(*top)) {
      popMinRaw();
      --dead_keys_;
      continue;
    }
    return top;
  }
}

bool EventQueue::step() {
  shard_.assertHeld();
  if (peekLive() == nullptr) return false;
  const Key key = popMinRaw();
  const std::uint32_t slot = slotOf(key.id);
  // Move the callback out of the slab before invoking: the handler may
  // schedule events, growing slots_ and invalidating slab references.
  Callback cb = std::move(slots_[slot].cb);
  const char* tag = slots_[slot].tag;
  const Time sched_at = slots_[slot].sched_at;
  const NodeTag node = slots_[slot].node;
  const NodeTag sched_from = slots_[slot].sched_from;
  releaseSlot(slot);
  --live_;
  // V100: simulation time is monotonic — schedule() clamps to now(),
  // so an earlier-than-now pop means the priority structure broke.
  VINI_AUDIT_CHECK(
      key.when >= now_,
      (check::Diagnostic{check::Severity::kError, "V100",
                         "event " + std::to_string(key.id),
                         "event timestamp " + std::to_string(key.when) +
                             " is earlier than now() " +
                             std::to_string(now_)}));
  if (advance_ && key.when > now_) advance_(now_, key.when);
  now_ = key.when;
  ++executed_;
  if (node != kNoNode) {
    ++node_executed_[node];
  } else {
    ++executed_unattributed_;
  }
  if (introspect_) introspect_(ExecEvent{key.when, sched_at, node, sched_from});
  // Events the handler schedules are attributed as scheduled-from this
  // event's node; reset afterwards (step() does not nest).
  exec_node_ = node;
  if (profiler_) {
    // Wall clock is read only on the profiled path: an unprofiled
    // step() pays a single branch.
    const auto start = std::chrono::steady_clock::now();
    cb();
    const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    // The callback may have detached the profiler; re-check.
    if (profiler_) profiler_(tag, node, wall);
  } else {
    cb();
  }
  exec_node_ = kNoNode;
  return true;
}

void EventQueue::runUntil(Time deadline) {
  shard_.assertHeld();
  if (shard_rt_ != nullptr) {
    shard_rt_->runUntil(deadline);
    return;
  }
  while (const Key* top = peekLive()) {
    if (top->when > deadline) break;
    step();
  }
  if (now_ < deadline) {
    if (advance_) advance_(now_, deadline);
    now_ = deadline;
  }
}

void EventQueue::run() {
  shard_.assertHeld();
  if (shard_rt_ != nullptr) {
    // Drain in lookahead-sized chunks so every window still spans the
    // full conservative horizon.
    const Duration w = shard_rt_->lookahead();
    constexpr Time kMax = std::numeric_limits<Time>::max();
    while (const Key* top = peekLive()) {
      const Time t = top->when;
      shard_rt_->runUntil(t > kMax - w ? kMax : t + w);
    }
    return;
  }
  while (step()) {
  }
}

void PeriodicTimer::start() {
  if (running_) return;
  running_ = true;
  pending_ = queue_.scheduleAfter(period_, tag_, node_, [this] { fire(); });
}

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) {
    queue_.cancel(pending_);
    pending_ = 0;
  }
}

void PeriodicTimer::fire() {
  pending_ = 0;
  if (!running_) return;
  // Re-arm before invoking so the callback may stop() or setPeriod().
  pending_ = queue_.scheduleAfter(period_, tag_, node_, [this] { fire(); });
  fn_();
}

void OneShotTimer::armAfter(Duration delay) {
  cancel();
  pending_ = queue_.scheduleAfter(delay, tag_, node_, [this] {
    pending_ = 0;
    fn_();
  });
}

void OneShotTimer::cancel() {
  if (pending_ != 0) {
    queue_.cancel(pending_);
    pending_ = 0;
  }
}

}  // namespace vini::sim
