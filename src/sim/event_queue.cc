#include "sim/event_queue.h"

#include <utility>

namespace vini::sim {

EventId EventQueue::schedule(Time when, Callback cb) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  heap_.push(Entry{when, id, std::move(cb)});
  pending_ids_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  // Only events still awaiting execution can be cancelled.
  if (pending_ids_.erase(id) == 0) return false;
  // Lazy cancellation: mark the id and skip it when popped.
  cancelled_.insert(id);
  return true;
}

bool EventQueue::step() {
  while (!heap_.empty()) {
    Entry e = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    pending_ids_.erase(e.id);
    now_ = e.when;
    ++executed_;
    e.cb();
    return true;
  }
  return false;
}

void EventQueue::runUntil(Time deadline) {
  while (!heap_.empty()) {
    const Entry& top = heap_.top();
    if (cancelled_.count(top.id) != 0) {
      cancelled_.erase(top.id);
      heap_.pop();
      continue;
    }
    if (top.when > deadline) break;
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

void EventQueue::run() {
  while (step()) {
  }
}

void PeriodicTimer::start() {
  if (running_) return;
  running_ = true;
  pending_ = queue_.scheduleAfter(period_, [this] { fire(); });
}

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) {
    queue_.cancel(pending_);
    pending_ = 0;
  }
}

void PeriodicTimer::fire() {
  pending_ = 0;
  if (!running_) return;
  // Re-arm before invoking so the callback may stop() or setPeriod().
  pending_ = queue_.scheduleAfter(period_, [this] { fire(); });
  fn_();
}

void OneShotTimer::armAfter(Duration delay) {
  cancel();
  pending_ = queue_.scheduleAfter(delay, [this] {
    pending_ = 0;
    fn_();
  });
}

void OneShotTimer::cancel() {
  if (pending_ != 0) {
    queue_.cancel(pending_);
    pending_ = 0;
  }
}

}  // namespace vini::sim
