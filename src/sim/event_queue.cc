#include "sim/event_queue.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

#include "check/audit.h"

namespace vini::sim {

EventId EventQueue::schedule(Time when, const char* tag, Callback cb) {
  shard_.assertHeld();
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  heap_.push_back(Entry{when, id, tag, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end(), Later{});
  pending_ids_.insert(id);
  return id;
}

bool EventQueue::cancel(EventId id) {
  shard_.assertHeld();
  // Only events still awaiting execution can be cancelled.
  if (pending_ids_.erase(id) == 0) {
    // V101: cancelling an event that already fired (or was already
    // cancelled) is deterministic — it returns false — but usually
    // means the caller lost track of its handle.
    VINI_AUDIT_CHECK(
        id == 0 || id >= next_id_,
        (check::Diagnostic{check::Severity::kWarning, "V101",
                           "event " + std::to_string(id),
                           "cancel() of an event that already fired or was "
                           "already cancelled"}));
    return false;
  }
  // Lazy cancellation: mark the id and skip it when popped.
  cancelled_.insert(id);
  return true;
}

EventQueue::Entry EventQueue::popEntry() {
  shard_.assertHeld();
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Entry e = std::move(heap_.back());
  heap_.pop_back();
  return e;
}

bool EventQueue::step() {
  shard_.assertHeld();
  while (!heap_.empty()) {
    Entry e = popEntry();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    pending_ids_.erase(e.id);
    // V100: simulation time is monotonic — schedule() clamps to now(),
    // so an earlier-than-now pop means the heap ordering broke.
    VINI_AUDIT_CHECK(
        e.when >= now_,
        (check::Diagnostic{check::Severity::kError, "V100",
                           "event " + std::to_string(e.id),
                           "event timestamp " + std::to_string(e.when) +
                               " is earlier than now() " +
                               std::to_string(now_)}));
    if (advance_ && e.when > now_) advance_(now_, e.when);
    now_ = e.when;
    ++executed_;
    if (profiler_) {
      // Wall clock is read only on the profiled path: an unprofiled
      // step() pays a single branch.
      const auto start = std::chrono::steady_clock::now();
      e.cb();
      const auto wall = std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
      // The callback may have detached the profiler; re-check.
      if (profiler_) profiler_(e.tag, wall);
    } else {
      e.cb();
    }
    return true;
  }
  return false;
}

void EventQueue::runUntil(Time deadline) {
  shard_.assertHeld();
  while (!heap_.empty()) {
    const Entry& top = heap_.front();
    if (cancelled_.count(top.id) != 0) {
      cancelled_.erase(top.id);
      popEntry();
      continue;
    }
    if (top.when > deadline) break;
    step();
  }
  if (now_ < deadline) {
    if (advance_) advance_(now_, deadline);
    now_ = deadline;
  }
}

void EventQueue::run() {
  shard_.assertHeld();
  while (step()) {
  }
}

void PeriodicTimer::start() {
  if (running_) return;
  running_ = true;
  pending_ = queue_.scheduleAfter(period_, [this] { fire(); });
}

void PeriodicTimer::stop() {
  if (!running_) return;
  running_ = false;
  if (pending_ != 0) {
    queue_.cancel(pending_);
    pending_ = 0;
  }
}

void PeriodicTimer::fire() {
  pending_ = 0;
  if (!running_) return;
  // Re-arm before invoking so the callback may stop() or setPeriod().
  pending_ = queue_.scheduleAfter(period_, [this] { fire(); });
  fn_();
}

void OneShotTimer::armAfter(Duration delay) {
  cancel();
  pending_ = queue_.scheduleAfter(delay, [this] {
    pending_ = 0;
    fn_();
  });
}

void OneShotTimer::cancel() {
  if (pending_ != 0) {
    queue_.cancel(pending_);
    pending_ = 0;
  }
}

}  // namespace vini::sim
