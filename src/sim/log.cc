#include "sim/log.h"

#include <iomanip>

namespace vini::sim {

Log& Log::instance() {
  static Log log;
  return log;
}

namespace {
const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void Log::write(Time now, LogLevel level, const std::string& component,
                const std::string& message) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(6) << toSeconds(now) << "s ["
     << levelName(level) << "] " << component << ": " << message << "\n";
  std::cerr << os.str();
}

void logAt(Time now, LogLevel level, const std::string& component,
           const std::string& message) {
  Log& log = Log::instance();
  if (log.shouldLog(level, component)) log.write(now, level, component, message);
}

}  // namespace vini::sim
