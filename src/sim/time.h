// Simulated time for the VINI substrate.
//
// All simulation time is kept as a signed 64-bit count of nanoseconds.
// A signed representation makes interval arithmetic (t2 - t1) safe and
// lets -1 serve as an explicit "no deadline" sentinel where needed.
#pragma once

#include <cstddef>
#include <cstdint>

namespace vini::sim {

/// Simulation time in nanoseconds since the start of the run.
using Time = std::int64_t;

/// Duration in nanoseconds (same representation as Time).
using Duration = std::int64_t;

inline constexpr Duration kNanosecond = 1;
inline constexpr Duration kMicrosecond = 1'000;
inline constexpr Duration kMillisecond = 1'000'000;
inline constexpr Duration kSecond = 1'000'000'000;

/// Convert a duration to fractional seconds (for reporting only).
constexpr double toSeconds(Duration d) { return static_cast<double>(d) / kSecond; }

/// Convert a duration to fractional milliseconds (for reporting only).
constexpr double toMillis(Duration d) { return static_cast<double>(d) / kMillisecond; }

/// Convert a duration to fractional microseconds (for reporting only).
constexpr double toMicros(Duration d) { return static_cast<double>(d) / kMicrosecond; }

/// Convert fractional seconds to a duration, rounding to the nearest tick.
constexpr Duration fromSeconds(double s) {
  return static_cast<Duration>(s * static_cast<double>(kSecond) + (s >= 0 ? 0.5 : -0.5));
}

/// Convert fractional milliseconds to a duration.
constexpr Duration fromMillis(double ms) {
  return fromSeconds(ms / 1e3);
}

/// Convert fractional microseconds to a duration.
constexpr Duration fromMicros(double us) {
  return fromSeconds(us / 1e6);
}

/// Time to clock `bytes` onto a wire of `bandwidth_bps`, as an integer
/// ceiling: a frame occupies the wire for *at least* its bit time, never
/// less.  Computing this in floating point and truncating (the pre-obs
/// code path) undercounts by up to 1 ns per frame, which lets
/// back-to-back frames overlap on a saturated link.  The intermediate
/// product (bits * kSecond) overflows int64 for frames past ~1 KB, so it
/// is carried in 128 bits.
constexpr Duration serializationDelay(std::size_t bytes, double bandwidth_bps) {
  const auto bps = static_cast<std::int64_t>(bandwidth_bps);
  if (bps <= 0) return 0;
  const auto bits = static_cast<__int128>(bytes) * 8;
  return static_cast<Duration>((bits * kSecond + bps - 1) / bps);
}

}  // namespace vini::sim
