#include "core/embedder.h"

#include <set>
#include <stdexcept>

namespace vini::core {

Embedding TopologyEmbedder::embed(const TopologySpec& spec, ResourceSpec resources) {
  phys::PhysNetwork& net = vini_.network();
  Embedding result;
  result.slice = &vini_.createSlice(spec.name, resources);
  Slice& slice = *result.slice;

  // Pass 1: explicit bindings.
  std::set<int> used_phys;
  std::map<std::string, phys::PhysNode*> placement;
  for (const auto& node_spec : spec.nodes) {
    if (node_spec.phys_name.empty()) continue;
    phys::PhysNode* phys = net.nodeByName(node_spec.phys_name);
    if (!phys) {
      throw std::runtime_error("embed: no physical node named " +
                               node_spec.phys_name);
    }
    if (!used_phys.insert(phys->id()).second) {
      throw std::runtime_error("embed: physical node " + node_spec.phys_name +
                               " bound twice");
    }
    placement[node_spec.name] = phys;
  }

  // Pass 2: greedy placement of unbound nodes on distinct free nodes.
  for (const auto& node_spec : spec.nodes) {
    if (!node_spec.phys_name.empty()) continue;
    phys::PhysNode* chosen = nullptr;
    for (const auto& phys : net.nodes()) {
      if (used_phys.count(phys->id()) == 0) {
        chosen = phys.get();
        break;
      }
    }
    if (!chosen) {
      throw std::runtime_error("embed: not enough physical nodes for " +
                               spec.name);
    }
    used_phys.insert(chosen->id());
    placement[node_spec.name] = chosen;
  }

  for (const auto& node_spec : spec.nodes) {
    slice.addNode(*placement.at(node_spec.name), node_spec.name);
  }
  for (const auto& link_spec : spec.links) {
    VirtualNode* a = slice.nodeByName(link_spec.a);
    VirtualNode* b = slice.nodeByName(link_spec.b);
    if (!a || !b) {
      throw std::runtime_error("embed: link references unknown node " +
                               link_spec.a + "/" + link_spec.b);
    }
    VirtualLink& link = slice.addLink(*a, *b);
    result.link_costs[&link] = link_spec.igp_cost;
  }
  return result;
}

}  // namespace vini::core
