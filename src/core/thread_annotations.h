// Thread-safety annotations for the parallel sharded event engine.
//
// The ROADMAP's next arc shards the World across worker threads by
// physical node.  Before any thread touches shared state, the state
// that *will* be shared (or per-shard-owned) is annotated here so
// clang's -Wthread-safety analysis (-DVINI_THREAD_SAFETY=ON, clang
// only) can police access statically.  Under gcc — and under clang
// without the option — every macro expands to nothing and the token
// struct below is an empty no-op, so the annotations are free.
//
// The capability model is deliberately simple at this stage: each
// engine-adjacent class carries a ShardToken, the capability "the
// worker shard that owns this object".  Data members that the sharded
// engine will treat as shard-owned are marked VINI_GUARDED_BY(shard_),
// and every method that touches them asserts the capability on entry
// via shard_.assertHeld() — a no-op call that tells the analysis "the
// owning shard is running this".  When real worker threads land, the
// assertions become the places where a debug build verifies
// std::this_thread against the owning shard, and cross-shard accessors
// get explicit VINI_REQUIRES contracts instead.
//
// Members documented with the cross-shard marker comment and missing a
// VINI_GUARDED_BY / VINI_PT_GUARDED_BY annotation are flagged V207 by
// vini_srclint (see src/check/srclint.h).
//
// This header is dependency-free on purpose: sim/ (the lowest layer)
// includes it, so it must not pull in anything.
#pragma once

#ifdef VINI_SHARD_CHECK
#include <atomic>
#include <cstdlib>
#include <thread>
#endif

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability) && __has_attribute(guarded_by) && \
    __has_attribute(assert_capability)
#define VINI_TS_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef VINI_TS_ATTR
#define VINI_TS_ATTR(x)  // not clang, or too old: annotations vanish
#endif

#define VINI_CAPABILITY(name) VINI_TS_ATTR(capability(name))
#define VINI_GUARDED_BY(x) VINI_TS_ATTR(guarded_by(x))
#define VINI_PT_GUARDED_BY(x) VINI_TS_ATTR(pt_guarded_by(x))
#define VINI_ACQUIRED_BEFORE(...) VINI_TS_ATTR(acquired_before(__VA_ARGS__))
#define VINI_ACQUIRED_AFTER(...) VINI_TS_ATTR(acquired_after(__VA_ARGS__))
#define VINI_REQUIRES(...) VINI_TS_ATTR(requires_capability(__VA_ARGS__))
#define VINI_REQUIRES_SHARED(...) \
  VINI_TS_ATTR(requires_shared_capability(__VA_ARGS__))
#define VINI_ACQUIRE(...) VINI_TS_ATTR(acquire_capability(__VA_ARGS__))
#define VINI_RELEASE(...) VINI_TS_ATTR(release_capability(__VA_ARGS__))
#define VINI_ASSERT_CAPABILITY(x) VINI_TS_ATTR(assert_capability(x))
#define VINI_EXCLUDES(...) VINI_TS_ATTR(locks_excluded(__VA_ARGS__))
#define VINI_RETURN_CAPABILITY(x) VINI_TS_ATTR(lock_returned(x))
#define VINI_NO_THREAD_SAFETY_ANALYSIS VINI_TS_ATTR(no_thread_safety_analysis)

namespace vini::core {

/// The capability "the worker shard that owns this object is the one
/// executing".  By default zero-size, zero-cost: assertHeld() is an
/// empty inline call whose only effect is telling clang's analysis the
/// capability is held for the remainder of the calling function.
///
/// -DVINI_SHARD_CHECK=ON arms the runtime check: the first assertHeld()
/// claims the token for the calling thread, and any later call from a
/// different thread aborts.  Single-threaded today that can only fire
/// if an object actually crosses threads — exactly the bug class the
/// sharded engine must keep out — so the sanitizer CI stages build
/// with it on.
#ifdef VINI_SHARD_CHECK
struct VINI_CAPABILITY("shard") ShardToken {
  void assertHeld() const VINI_ASSERT_CAPABILITY(this) {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // unclaimed
    if (owner_.compare_exchange_strong(expected, self,
                                       std::memory_order_acq_rel)) {
      return;  // first touch claims the shard
    }
    if (expected != self) std::abort();
  }
  /// Release the claim (a shard handing an object to another shard).
  void release() const { owner_.store({}, std::memory_order_release); }

 private:
  mutable std::atomic<std::thread::id> owner_{};
};
#else
struct VINI_CAPABILITY("shard") ShardToken {
  void assertHeld() const VINI_ASSERT_CAPABILITY(this) {}
  void release() const {}
};
#endif

}  // namespace vini::core
