// Thread-safety annotations for the parallel sharded event engine.
//
// The engine shards the World across worker threads by physical node
// (sim/shard.h).  State that is shared — or per-shard-owned — is
// annotated here so clang's -Wthread-safety analysis
// (-DVINI_THREAD_SAFETY=ON, clang only) can police access statically.
// Under gcc, and under clang without the option, every macro expands to
// nothing; the runtime ownership check below stays armed either way.
//
// The capability model: each engine-adjacent class carries a
// ShardToken, the capability "the execution context that owns this
// object".  Data members the sharded engine treats as shard-owned are
// marked VINI_GUARDED_BY(shard_), and every method that touches them
// asserts the capability on entry via shard_.assertHeld().  At runtime
// the first assertHeld() claims the token for the calling context and
// any later call from a different context aborts with a diagnostic —
// this is the real owner check, on by default (the historical
// -DVINI_SHARD_CHECK=ON build flag is now redundant but still
// accepted).  A context is a shard lane when the sharded engine
// installed one on this thread (setShardContext), else the thread
// itself — so lane handoff between worker threads across barrier
// rounds does not trip the check, while two live contexts touching one
// object does.
//
// Members documented with the cross-shard marker comment and missing a
// VINI_GUARDED_BY / VINI_PT_GUARDED_BY annotation are flagged V207 by
// vini_srclint (see src/check/srclint.h).
//
// This header is dependency-free on purpose: sim/ (the lowest layer)
// includes it, so it must not pull in anything beyond the standard
// library.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <thread>

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability) && __has_attribute(guarded_by) && \
    __has_attribute(assert_capability)
#define VINI_TS_ATTR(x) __attribute__((x))
#endif
#endif
#ifndef VINI_TS_ATTR
#define VINI_TS_ATTR(x)  // not clang, or too old: annotations vanish
#endif

#define VINI_CAPABILITY(name) VINI_TS_ATTR(capability(name))
#define VINI_GUARDED_BY(x) VINI_TS_ATTR(guarded_by(x))
#define VINI_PT_GUARDED_BY(x) VINI_TS_ATTR(pt_guarded_by(x))
#define VINI_ACQUIRED_BEFORE(...) VINI_TS_ATTR(acquired_before(__VA_ARGS__))
#define VINI_ACQUIRED_AFTER(...) VINI_TS_ATTR(acquired_after(__VA_ARGS__))
#define VINI_REQUIRES(...) VINI_TS_ATTR(requires_capability(__VA_ARGS__))
#define VINI_REQUIRES_SHARED(...) \
  VINI_TS_ATTR(requires_shared_capability(__VA_ARGS__))
#define VINI_ACQUIRE(...) VINI_TS_ATTR(acquire_capability(__VA_ARGS__))
#define VINI_RELEASE(...) VINI_TS_ATTR(release_capability(__VA_ARGS__))
#define VINI_ASSERT_CAPABILITY(x) VINI_TS_ATTR(assert_capability(x))
#define VINI_EXCLUDES(...) VINI_TS_ATTR(locks_excluded(__VA_ARGS__))
#define VINI_RETURN_CAPABILITY(x) VINI_TS_ATTR(lock_returned(x))
#define VINI_NO_THREAD_SAFETY_ANALYSIS VINI_TS_ATTR(no_thread_safety_analysis)

namespace vini::core {

namespace detail {
/// Context ids are 40-bit so an epoch fits in the same token word.
/// Lane contexts are small even numbers ((lane + 1) * 2, installed by
/// the sharded engine); thread contexts are hash-derived odd numbers,
/// so the two can never collide.
inline constexpr unsigned kShardCtxBits = 40;
inline constexpr std::uint64_t kShardCtxMask = (1ull << kShardCtxBits) - 1;

/// Stable nonzero odd id for the calling thread (used when no shard
/// lane context is installed).
inline std::uint64_t threadContextId() {
  thread_local std::uint64_t cached = 0;
  if (cached == 0) {
    const std::uint64_t h =
        std::hash<std::thread::id>{}(std::this_thread::get_id());
    cached = (h & kShardCtxMask) | 1;  // odd, never 0
  }
  return cached;
}

/// The shard-lane context installed on this thread by the sharded
/// engine while it executes a lane, 0 when none.
inline thread_local std::uint64_t t_shard_context = 0;

/// Global round word: [epoch : 63 | parallel : 1].  The sharded engine
/// bumps the epoch on every transition into and out of a parallel
/// window, so a token claim is implicitly scoped to one phase: stale
/// claims from an earlier phase are re-claimable, and only two live
/// contexts colliding inside the *same* parallel window abort.  While
/// no sharded engine runs the word stays 0 (serial, epoch 0) and every
/// claim migrates freely — safe, because a serial phase is
/// single-threaded by construction.
inline std::atomic<std::uint64_t> g_shard_round{0};
}  // namespace detail

/// Install (nonzero) or clear (zero) the shard-lane context for the
/// calling thread.  Only the sharded engine's worker loop calls this.
inline void setShardContext(std::uint64_t context_id) {
  detail::t_shard_context = context_id;
}

/// The ownership context assertHeld() claims under: the installed lane
/// context if any, else the thread itself.
inline std::uint64_t currentShardContextId() {
  const std::uint64_t lane = detail::t_shard_context;
  return lane != 0 ? lane : detail::threadContextId();
}

/// Enter a parallel window: bump the epoch and set the parallel bit.
/// Every ShardToken claim made in earlier phases becomes stale (freely
/// re-claimable) and claims made inside this window are enforced.
inline void beginShardParallelPhase() {
  const std::uint64_t r =
      detail::g_shard_round.load(std::memory_order_relaxed);
  detail::g_shard_round.store((((r >> 1) + 1) << 1) | 1,
                              std::memory_order_release);
}

/// Leave a parallel window: bump the epoch and clear the parallel bit.
inline void endShardParallelPhase() {
  const std::uint64_t r =
      detail::g_shard_round.load(std::memory_order_relaxed);
  detail::g_shard_round.store(((r >> 1) + 1) << 1,
                              std::memory_order_release);
}

/// The capability "the execution context that owns this object is the
/// one executing".  assertHeld() claims the token on first touch and
/// aborts if a *different* context touches it inside the same parallel
/// window.  Outside parallel windows (and across window boundaries —
/// the claim's epoch no longer matches) ownership migrates freely,
/// which is safe because those phases are single-threaded by
/// construction.  The check is armed by default; the historical
/// -DVINI_SHARD_CHECK=ON build flag is now redundant but still
/// accepted.
struct VINI_CAPABILITY("shard") ShardToken {
  void assertHeld() const VINI_ASSERT_CAPABILITY(this) {
    const std::uint64_t round =
        detail::g_shard_round.load(std::memory_order_acquire);
    const std::uint64_t want =
        ((round >> 1) << detail::kShardCtxBits) |
        (currentShardContextId() & detail::kShardCtxMask);
    std::uint64_t cur = owner_.load(std::memory_order_acquire);
    if (cur == want) return;
    const bool parallel = (round & 1) != 0;
    if (!parallel || (cur >> detail::kShardCtxBits) != (round >> 1)) {
      // Serial phase, or a stale claim from an earlier phase: (re)claim.
      // The CAS can only lose a race inside a parallel window, where a
      // concurrent claim by another context is a genuine violation.
      if (owner_.compare_exchange_strong(cur, want,
                                         std::memory_order_acq_rel)) {
        return;
      }
      if (cur == want) return;
    }
    std::fprintf(stderr,
                 "vini: ShardToken ownership violation: object %p owned by "
                 "context %llx, touched from context %llx (round %llx)\n",
                 static_cast<const void*>(this),
                 static_cast<unsigned long long>(cur & detail::kShardCtxMask),
                 static_cast<unsigned long long>(currentShardContextId()),
                 static_cast<unsigned long long>(round));
    std::abort();
  }
  /// Drop the claim explicitly (rarely needed: epoch bumps already
  /// invalidate claims at every phase transition).
  void release() const { owner_.store(0, std::memory_order_release); }

 private:
  mutable std::atomic<std::uint64_t> owner_{0};
};

}  // namespace vini::core
