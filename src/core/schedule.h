// Experiment event schedule.
//
// Section 6.2: "In an ns simulation, an experimenter can generate
// traffic and routing streams, specify times when certain links should
// fail, and define the traces that should be collected.  VINI should
// provide similar facilities."  EventSchedule is that facility: labelled
// actions at absolute times, with an execution log so a run can be
// audited afterwards.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/event_queue.h"

namespace vini::core {

class EventSchedule {
 public:
  explicit EventSchedule(sim::EventQueue& queue) : queue_(queue) {}

  /// Run `action` at absolute time `when`, recording `label` in the log.
  void at(sim::Time when, const std::string& label, std::function<void()> action);

  /// Convenience: seconds-based overload used by experiment scripts.
  void atSeconds(double when_s, const std::string& label,
                 std::function<void()> action) {
    at(sim::fromSeconds(when_s), label, std::move(action));
  }

  struct LogEntry {
    sim::Time when = 0;
    std::string label;
  };
  const std::vector<LogEntry>& log() const { return log_; }
  std::size_t scheduledCount() const { return scheduled_; }

 private:
  sim::EventQueue& queue_;
  std::vector<LogEntry> log_;
  std::size_t scheduled_ = 0;
};

}  // namespace vini::core
