#include "core/schedule.h"

namespace vini::core {

void EventSchedule::at(sim::Time when, const std::string& label,
                       std::function<void()> action) {
  ++scheduled_;
  queue_.schedule(when, [this, when, label, action = std::move(action)] {
    log_.push_back(LogEntry{when, label});
    action();
  });
}

}  // namespace vini::core
