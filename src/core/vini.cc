#include "core/vini.h"

#include <algorithm>
#include <stdexcept>

namespace vini::core {

const char* upcallTypeName(UpcallEvent::Type type) {
  switch (type) {
    case UpcallEvent::Type::kPhysLinkDown: return "phys-link-down";
    case UpcallEvent::Type::kPhysLinkUp: return "phys-link-up";
    case UpcallEvent::Type::kVirtualLinkDown: return "virtual-link-down";
    case UpcallEvent::Type::kVirtualLinkUp: return "virtual-link-up";
  }
  return "?";
}

Vini::Vini(phys::PhysNetwork& net, ViniConfig config)
    : net_(net), config_(config) {}

Vini::~Vini() = default;

Slice& Vini::createSlice(const std::string& name, ResourceSpec resources) {
  const int id = static_cast<int>(slices_.size()) + 1;  // 10.0/16 reserved
  if (id > 255) throw std::runtime_error("out of slice address space");
  const packet::Prefix overlay(packet::IpAddress(10, static_cast<std::uint8_t>(id), 0, 0), 16);
  const auto port = static_cast<std::uint16_t>(config_.base_tunnel_port + id);
  slices_.push_back(std::unique_ptr<Slice>(
      new Slice(*this, id, name, resources, port, overlay)));
  port_reservations_[port] = id;  // the slice's tunnel port is its own
  return *slices_.back();
}

bool Vini::reservePort(const Slice& slice, std::uint16_t port) {
  auto [it, inserted] = port_reservations_.try_emplace(port, slice.id());
  return inserted || it->second == slice.id();
}

int Vini::portOwner(std::uint16_t port) const {
  auto it = port_reservations_.find(port);
  return it == port_reservations_.end() ? -1 : it->second;
}

Slice* Vini::sliceByName(const std::string& name) {
  for (auto& slice : slices_) {
    if (slice->name() == name) return slice.get();
  }
  return nullptr;
}

double Vini::reservedCpuOn(const phys::PhysNode& node) const {
  auto it = node_reservations_.find(node.id());
  return it == node_reservations_.end() ? 0.0 : it->second;
}

void Vini::admitNode(Slice& slice, phys::PhysNode& phys) {
  double& reserved = node_reservations_[phys.id()];
  const double want = slice.resources().cpu_reservation;
  if (reserved + want > config_.max_node_reservation) {
    throw std::runtime_error(
        "admission control: node " + phys.name() + " has " +
        std::to_string(reserved) + " CPU reserved; cannot admit " +
        std::to_string(want) + " more for slice " + slice.name());
  }
  reserved += want;
}

void Vini::pinLink(VirtualLink& link) {
  link.path_ = net_.pathBetween(link.nodeA().physNode().id(),
                                link.nodeB().physNode().id());
  if (link.path_.empty()) {
    throw std::runtime_error("no underlay path for virtual link " + link.name());
  }
  bool all_up = true;
  for (phys::PhysLink* phys_link : link.path_) {
    riders_[phys_link->id()].push_back(&link);
    if (subscribed_links_.insert(phys_link->id()).second) {
      // First time this controller sees the physical link: subscribe
      // once, forever (riders may empty and refill across migrations).
      phys_link->subscribe([this](phys::PhysLink& l, bool up) {
        onPhysLinkState(l, up);
      });
    }
    all_up = all_up && phys_link->isUp();
  }
  if (config_.expose_underlay_failures) link.setUnderlayUp(all_up);
}

void Vini::rehomeNode(VirtualNode& vnode, phys::PhysNode& dest) {
  phys::PhysNode& old_phys = vnode.physNode();
  if (&old_phys == &dest) return;
  // Transfer the CPU reservation, admission-controlled at the new home.
  const double want = vnode.slice().resources().cpu_reservation;
  double& dest_reserved = node_reservations_[dest.id()];
  if (dest_reserved + want > config_.max_node_reservation) {
    throw std::runtime_error(
        "admission control: node " + dest.name() + " has " +
        std::to_string(dest_reserved) + " CPU reserved; cannot admit " +
        std::to_string(want) + " more for migrating node " + vnode.name());
  }
  node_reservations_[old_phys.id()] -= want;
  dest_reserved += want;
  vnode.phys_ = &dest;
  // Re-pin every virtual link terminating at this node over the new
  // underlay paths and recompute fate sharing.
  for (const auto& link : vnode.slice().links()) {
    if (&link->nodeA() != &vnode && &link->nodeB() != &vnode) continue;
    for (phys::PhysLink* phys_link : link->path_) {
      auto& riders = riders_[phys_link->id()];
      riders.erase(std::remove(riders.begin(), riders.end(), link.get()),
                   riders.end());
    }
    link->path_.clear();
    pinLink(*link);
  }
}

void Vini::onPhysLinkState(phys::PhysLink& phys_link, bool up) {
  const sim::Time now = net_.queue().now();
  auto it = riders_.find(phys_link.id());
  if (it == riders_.end()) return;
  for (VirtualLink* vlink : it->second) {
    const int slice_id = vlink->nodeA().slice().id();

    // Raw physical alarm to the owning slice.
    UpcallEvent phys_event;
    phys_event.type = up ? UpcallEvent::Type::kPhysLinkUp
                         : UpcallEvent::Type::kPhysLinkDown;
    phys_event.when = now;
    phys_event.phys_link_id = phys_link.id();
    phys_event.virtual_link_id = vlink->id();
    upcalls_.deliver(slice_id, phys_event);

    if (!config_.expose_underlay_failures) continue;  // overlay mode: masked

    // Fate sharing: recompute the virtual link's underlay state.
    bool all_up = true;
    for (phys::PhysLink* l : vlink->underlayPath()) {
      all_up = all_up && l->isUp();
    }
    const bool was_up = vlink->isUp();
    vlink->setUnderlayUp(all_up);
    if (vlink->isUp() != was_up) {
      UpcallEvent virt_event;
      virt_event.type = vlink->isUp() ? UpcallEvent::Type::kVirtualLinkUp
                                      : UpcallEvent::Type::kVirtualLinkDown;
      virt_event.when = now;
      virt_event.phys_link_id = phys_link.id();
      virt_event.virtual_link_id = vlink->id();
      upcalls_.deliver(slice_id, virt_event);
    }
  }
}

}  // namespace vini::core
