// Topology embedding.
//
// An experiment asks for a virtual topology (nodes, links, metrics); the
// embedder places it onto the physical infrastructure — honoring
// explicit bindings like "my virtual Denver goes on the PlanetLab node
// at the Denver PoP" (the Section 5.2 experiment mirrors Abilene
// one-to-one) and assigning the rest greedily to distinct nodes.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/vini.h"

namespace vini::core {

struct TopologyNodeSpec {
  std::string name;
  /// Physical node to bind to; empty = embedder's choice.
  std::string phys_name;
};

struct TopologyLinkSpec {
  std::string a;
  std::string b;
  /// IGP metric for this virtual link (e.g. the real Abilene OSPF weight).
  std::uint32_t igp_cost = 1;
};

struct TopologySpec {
  std::string name;
  std::vector<TopologyNodeSpec> nodes;
  std::vector<TopologyLinkSpec> links;
};

/// The result of an embedding: the slice plus per-link metrics the
/// overlay layer needs when configuring routing.
struct Embedding {
  Slice* slice = nullptr;
  std::map<const VirtualLink*, std::uint32_t> link_costs;
};

class TopologyEmbedder {
 public:
  explicit TopologyEmbedder(Vini& vini) : vini_(vini) {}

  /// Create a slice and embed `spec` onto the physical network.
  /// Throws on unsatisfiable bindings or admission-control rejection.
  Embedding embed(const TopologySpec& spec, ResourceSpec resources = {});

 private:
  Vini& vini_;
};

}  // namespace vini::core
