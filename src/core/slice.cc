#include "core/slice.h"

#include <stdexcept>

#include "core/vini.h"

namespace vini::core {

// ---------------------------------------------------------------------------
// VirtualInterface

bool VirtualInterface::isUp() const { return link_.isUp(); }

void VirtualInterface::send(packet::Packet p) {
  if (!link_.isUp()) return;  // fate sharing: a dead link eats packets
  p.meta.slice_id = node_.slice().id();
  if (node_.control_tx_) node_.control_tx_(std::move(p));
}

// ---------------------------------------------------------------------------
// VirtualNode

VirtualNode::VirtualNode(Slice& slice, phys::PhysNode& phys, std::string name,
                         packet::IpAddress tap_address)
    : slice_(slice), phys_(&phys), name_(std::move(name)), tap_address_(tap_address) {}

VirtualInterface* VirtualNode::interfaceByAddress(packet::IpAddress addr) {
  for (auto& iface : interfaces_) {
    if (iface->address() == addr) return iface.get();
  }
  return nullptr;
}

VirtualInterface* VirtualNode::interfaceToPeer(packet::IpAddress peer) {
  for (auto& iface : interfaces_) {
    if (iface->peerAddress() == peer) return iface.get();
  }
  return nullptr;
}

VirtualInterface* VirtualNode::interfaceOnLink(const VirtualLink& link) {
  for (auto& iface : interfaces_) {
    if (&iface->link() == &link) return iface.get();
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// VirtualLink

void VirtualLink::setAdminUp(bool up) {
  if (admin_up_ == up) return;
  const bool was_up = isUp();
  admin_up_ = up;
  notify(was_up);
}

void VirtualLink::setUnderlayUp(bool up) {
  if (underlay_up_ == up) return;
  const bool was_up = isUp();
  underlay_up_ = up;
  notify(was_up);
}

void VirtualLink::notify(bool was_up) {
  const bool now_up = isUp();
  if (now_up == was_up) return;
  for (auto& listener : listeners_) listener(*this, now_up);
}

// ---------------------------------------------------------------------------
// Slice

Slice::Slice(Vini& vini, int id, std::string name, ResourceSpec resources,
             std::uint16_t tunnel_port, packet::Prefix overlay_prefix)
    : vini_(vini),
      id_(id),
      name_(std::move(name)),
      resources_(resources),
      tunnel_port_(tunnel_port),
      overlay_prefix_(overlay_prefix) {}

VirtualNode& Slice::addNode(phys::PhysNode& phys, const std::string& name) {
  for (const auto& node : nodes_) {
    if (&node->physNode() == &phys) {
      throw std::runtime_error("slice " + name_ + " already has a node on " +
                               phys.name());
    }
    if (node->name() == name) {
      throw std::runtime_error("duplicate virtual node name: " + name);
    }
  }
  vini_.admitNode(*this, phys);
  // tap0 address: 10.<slice>.<node-index>.2 inside the slice's /16.
  const auto index = static_cast<std::uint32_t>(nodes_.size());
  const packet::IpAddress tap(overlay_prefix_.address().value() | (index << 8) | 2);
  nodes_.push_back(std::make_unique<VirtualNode>(*this, phys, name, tap));
  return *nodes_.back();
}

VirtualLink& Slice::addLink(VirtualNode& a, VirtualNode& b) {
  if (&a.slice() != this || &b.slice() != this) {
    throw std::runtime_error("virtual link endpoints must belong to the slice");
  }
  if (&a == &b) throw std::runtime_error("virtual link endpoints must differ");

  auto link = std::make_unique<VirtualLink>();
  link->id_ = static_cast<int>(links_.size());
  link->name_ = a.name() + "-" + b.name();
  link->a_ = &a;
  link->b_ = &b;

  // Number the link ends from a common /30 inside 10.<slice>.224.0/19
  // (disjoint from the node-index /24s used for tap addresses).
  const int k = next_link_subnet_++;
  if (k >= (1 << 11)) throw std::runtime_error("slice out of /30 link subnets");
  const std::uint32_t base = overlay_prefix_.address().value() +
                             (224u << 8) +  // start at 10.<slice>.224.0
                             (static_cast<std::uint32_t>(k) << 2);
  link->subnet_ = packet::Prefix(packet::IpAddress(base), 30);
  const packet::IpAddress addr_a(base + 1);
  const packet::IpAddress addr_b(base + 2);

  auto if_a = std::make_unique<VirtualInterface>(
      "vif-" + link->name_ + "-a", addr_a, addr_b, link->subnet_, a, *link);
  auto if_b = std::make_unique<VirtualInterface>(
      "vif-" + link->name_ + "-b", addr_b, addr_a, link->subnet_, b, *link);
  link->if_a_ = if_a.get();
  link->if_b_ = if_b.get();
  a.interfaces_.push_back(std::move(if_a));
  b.interfaces_.push_back(std::move(if_b));

  links_.push_back(std::move(link));
  vini_.pinLink(*links_.back());
  return *links_.back();
}

VirtualNode* Slice::nodeByName(const std::string& name) {
  for (auto& node : nodes_) {
    if (node->name() == name) return node.get();
  }
  return nullptr;
}

VirtualLink* Slice::linkBetween(const std::string& a, const std::string& b) {
  for (auto& link : links_) {
    const std::string& na = link->nodeA().name();
    const std::string& nb = link->nodeB().name();
    if ((na == a && nb == b) || (na == b && nb == a)) return link.get();
  }
  return nullptr;
}

}  // namespace vini::core
