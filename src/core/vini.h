// Vini: the virtual network infrastructure controller.
//
// Owns the slices embedded on a physical network, allocates per-slice
// address space and tunnel ports, performs admission control for CPU
// reservations, pins virtual links to underlay paths, and delivers
// upcalls — "layer-3 alarms to virtual nodes" (Table 1) — when physical
// components fail, so experiments share fate with the substrate instead
// of having failures silently masked by IP rerouting (Section 3.1).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/slice.h"
#include "phys/network.h"
#include "sim/time.h"

namespace vini::core {

/// An infrastructure event reported to slices.
struct UpcallEvent {
  enum class Type {
    kPhysLinkDown,
    kPhysLinkUp,
    kVirtualLinkDown,
    kVirtualLinkUp,
  };
  Type type;
  sim::Time when = 0;
  int phys_link_id = -1;
  int virtual_link_id = -1;
};

const char* upcallTypeName(UpcallEvent::Type type);

/// Per-slice subscription bus for infrastructure events.
class UpcallBus {
 public:
  using Handler = std::function<void(const UpcallEvent&)>;

  void subscribe(int slice_id, Handler handler) {
    handlers_[slice_id].push_back(std::move(handler));
  }

  void deliver(int slice_id, const UpcallEvent& event) {
    auto it = handlers_.find(slice_id);
    if (it == handlers_.end()) return;
    for (auto& handler : it->second) handler(event);
  }

 private:
  std::map<int, std::vector<Handler>> handlers_;
};

struct ViniConfig {
  /// Expose underlay failures to virtual links (the VINI requirement).
  /// When false, virtual links behave like a plain overlay: the underlay
  /// reroutes and the experiment never hears about the failure — the
  /// behaviour the paper argues against.  Combine with
  /// phys::NetworkConfig::mask_failures for the full plain-overlay mode.
  bool expose_underlay_failures = true;
  /// First slice gets this tunnel port; subsequent slices the next ones.
  std::uint16_t base_tunnel_port = 33000;
  /// Admission control: total CPU reservation allowed per physical node.
  double max_node_reservation = 0.9;
};

class Vini {
 public:
  Vini(phys::PhysNetwork& net, ViniConfig config = {});
  ~Vini();

  Vini(const Vini&) = delete;
  Vini& operator=(const Vini&) = delete;

  /// Create a slice.  Each slice receives a distinct overlay prefix
  /// 10.<slice>.0.0/16 and a distinct tunnel port.
  Slice& createSlice(const std::string& name, ResourceSpec resources = {});

  const std::vector<std::unique_ptr<Slice>>& slices() const { return slices_; }
  Slice* sliceByName(const std::string& name);

  phys::PhysNetwork& network() { return net_; }
  const ViniConfig& config() const { return config_; }
  UpcallBus& upcalls() { return upcalls_; }

  /// Total CPU reservation currently admitted on a physical node.
  double reservedCpuOn(const phys::PhysNode& node) const;

  /// Reserve a UDP port infrastructure-wide for a slice (Section 4.1.1:
  /// each slice "may reserve specific ports").  Returns false if another
  /// slice holds it.  Slice tunnel ports are reserved automatically.
  bool reservePort(const Slice& slice, std::uint16_t port);
  /// The slice holding `port`, or -1.
  int portOwner(std::uint16_t port) const;

  /// Live migration: move a virtual node to another substrate node.
  /// Transfers its CPU reservation (admission-controlled at the
  /// destination), retargets the node, and re-pins every virtual link
  /// terminating at it over the new underlay paths (recomputing fate
  /// sharing).  Throws if the destination cannot admit the reservation
  /// or a re-pinned link has no underlay path; the node is untouched on
  /// failure.  Data-plane re-homing (tunnel sockets, Click graph) is the
  /// overlay layer's job.
  void rehomeNode(VirtualNode& vnode, phys::PhysNode& dest);

 private:
  friend class Slice;

  /// Called by Slice::addNode for admission control; throws on violation.
  void admitNode(Slice& slice, phys::PhysNode& phys);

  /// Called by Slice::addLink: pins the path and wires fate sharing.
  void pinLink(VirtualLink& link);

  void onPhysLinkState(phys::PhysLink& link, bool up);

  phys::PhysNetwork& net_;
  ViniConfig config_;
  std::vector<std::unique_ptr<Slice>> slices_;
  UpcallBus upcalls_;
  /// Which virtual links ride each physical link.
  std::map<int, std::vector<VirtualLink*>> riders_;
  /// Physical links whose state this controller already subscribed to.
  /// Kept separate from riders_ so a link whose rider set empties during
  /// a migration re-pin is never subscribed twice.
  std::set<int> subscribed_links_;
  std::map<int, double> node_reservations_;
  std::map<std::uint16_t, int> port_reservations_;
};

}  // namespace vini::core
