// The VINI layer: slices, virtual nodes, virtual interfaces, and virtual
// links embedded on the shared physical infrastructure.
//
// This is the paper's primary contribution (Section 3): give each
// experiment (a "slice", in PlanetLab terms) its own arbitrary virtual
// topology — nodes with as many interfaces as the experiment wants
// (Section 3.1 "unique interfaces per experiment"), point-to-point
// virtual links numbered from common /30 subnets so unmodified routing
// software sees a real network (Section 4.1.3), fate sharing with the
// underlay (Section 3.1 "exposure of underlying topology changes"), and
// per-slice resources (Section 3.4).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "packet/ip_address.h"
#include "packet/packet.h"
#include "phys/network.h"
#include "xorp/vif.h"

namespace vini::core {

class Slice;
class VirtualLink;
class VirtualNode;
class Vini;

/// Per-slice resource guarantees (Section 3.4 / 4.1.2).
struct ResourceSpec {
  /// Guaranteed minimum CPU fraction on every node the slice occupies.
  double cpu_reservation = 0.0;
  /// Linux real-time priority for the slice's forwarder.
  bool realtime = false;
  /// Shape each virtual link to this rate (0 = unshaped).
  double link_bandwidth_bps = 0.0;
};

/// A virtual point-to-point interface: one end of a virtual link, as the
/// routing software sees it.  Implements xorp::Vif so XORP can treat it
/// exactly like a physical interface (Section 4.2.2).
class VirtualInterface final : public xorp::Vif {
 public:
  VirtualInterface(std::string name, packet::IpAddress address,
                   packet::IpAddress peer, packet::Prefix subnet,
                   VirtualNode& node, VirtualLink& link)
      : name_(std::move(name)),
        address_(address),
        peer_(peer),
        subnet_(subnet),
        node_(node),
        link_(link) {}

  const std::string& name() const override { return name_; }
  packet::IpAddress address() const override { return address_; }
  packet::IpAddress peerAddress() const override { return peer_; }
  packet::Prefix subnet() const override { return subnet_; }
  bool isUp() const override;
  void send(packet::Packet p) override;

  VirtualNode& node() { return node_; }
  VirtualLink& link() { return link_; }

 private:
  std::string name_;
  packet::IpAddress address_;
  packet::IpAddress peer_;
  packet::Prefix subnet_;
  VirtualNode& node_;
  VirtualLink& link_;
};

/// A virtual node: the slice's presence on one physical node.
class VirtualNode {
 public:
  VirtualNode(Slice& slice, phys::PhysNode& phys, std::string name,
              packet::IpAddress tap_address);

  const std::string& name() const { return name_; }
  Slice& slice() { return slice_; }
  phys::PhysNode& physNode() { return *phys_; }

  /// The node's address on the slice's overlay (its tap0 address).
  packet::IpAddress tapAddress() const { return tap_address_; }

  const std::vector<std::unique_ptr<VirtualInterface>>& interfaces() const {
    return interfaces_;
  }
  VirtualInterface* interfaceByAddress(packet::IpAddress addr);
  VirtualInterface* interfaceToPeer(packet::IpAddress peer);
  VirtualInterface* interfaceOnLink(const VirtualLink& link);

  /// The data plane (overlay layer) installs the transmit hook that
  /// carries control-plane packets out of this virtual node.
  void setControlTx(std::function<void(packet::Packet)> tx) { control_tx_ = std::move(tx); }

 private:
  friend class Slice;
  friend class VirtualInterface;
  friend class Vini;  // live migration re-homes phys_

  Slice& slice_;
  /// Pointer, not reference: Vini::rehomeNode retargets it when the
  /// virtual node is live-migrated to another substrate node.
  phys::PhysNode* phys_;
  std::string name_;
  packet::IpAddress tap_address_;
  std::vector<std::unique_ptr<VirtualInterface>> interfaces_;
  std::function<void(packet::Packet)> control_tx_;
};

/// A virtual link: a UDP tunnel between two virtual nodes, pinned to the
/// underlay path between their physical nodes so that physical failures
/// are shared (never masked) when the infrastructure is in expose mode.
class VirtualLink {
 public:
  using StateListener = std::function<void(VirtualLink&, bool up)>;

  int id() const { return id_; }
  const std::string& name() const { return name_; }
  VirtualNode& nodeA() { return *a_; }
  VirtualNode& nodeB() { return *b_; }
  VirtualInterface& interfaceA() { return *if_a_; }
  VirtualInterface& interfaceB() { return *if_b_; }
  packet::Prefix subnet() const { return subnet_; }

  /// The underlay links this virtual link is pinned over.
  const std::vector<phys::PhysLink*>& underlayPath() const { return path_; }

  /// Up = administratively up AND (in expose mode) every underlay link up.
  bool isUp() const { return admin_up_ && underlay_up_; }
  bool adminUp() const { return admin_up_; }
  bool underlayUp() const { return underlay_up_; }

  /// Administrative control (experiment-driven).
  void setAdminUp(bool up);

  void subscribe(StateListener listener) { listeners_.push_back(std::move(listener)); }

  /// The peer virtual node of `node` on this link.
  VirtualNode& peerOf(const VirtualNode& node) {
    return &node == a_ ? *b_ : *a_;
  }

 private:
  friend class Slice;
  friend class Vini;

  void setUnderlayUp(bool up);
  void notify(bool was_up);

  int id_ = 0;
  std::string name_;
  VirtualNode* a_ = nullptr;
  VirtualNode* b_ = nullptr;
  VirtualInterface* if_a_ = nullptr;
  VirtualInterface* if_b_ = nullptr;
  packet::Prefix subnet_;
  std::vector<phys::PhysLink*> path_;
  bool admin_up_ = true;
  bool underlay_up_ = true;
  std::vector<StateListener> listeners_;
};

/// One experiment's virtual network.
class Slice {
 public:
  int id() const { return id_; }
  const std::string& name() const { return name_; }
  const ResourceSpec& resources() const { return resources_; }

  /// UDP port this slice's tunnels use on every node (each slice may
  /// reserve its own ports — Section 4.1.1).
  std::uint16_t tunnelPort() const { return tunnel_port_; }

  /// The 10.x prefix that addresses this slice's overlay.
  packet::Prefix overlayPrefix() const { return overlay_prefix_; }

  /// Place a virtual node on a physical node.  Throws if admission
  /// control rejects the placement (CPU over-subscription) or the slice
  /// already has a node there.
  VirtualNode& addNode(phys::PhysNode& phys, const std::string& name);

  /// Create a virtual link between two of this slice's nodes: allocates
  /// a /30, creates the two interfaces, and pins the underlay path.
  VirtualLink& addLink(VirtualNode& a, VirtualNode& b);

  const std::vector<std::unique_ptr<VirtualNode>>& nodes() const { return nodes_; }
  const std::vector<std::unique_ptr<VirtualLink>>& links() const { return links_; }
  VirtualNode* nodeByName(const std::string& name);
  VirtualLink* linkBetween(const std::string& a, const std::string& b);

 private:
  friend class Vini;

  Slice(Vini& vini, int id, std::string name, ResourceSpec resources,
        std::uint16_t tunnel_port, packet::Prefix overlay_prefix);

  Vini& vini_;
  int id_;
  std::string name_;
  ResourceSpec resources_;
  std::uint16_t tunnel_port_;
  packet::Prefix overlay_prefix_;
  std::vector<std::unique_ptr<VirtualNode>> nodes_;
  std::vector<std::unique_ptr<VirtualLink>> links_;
  int next_link_subnet_ = 0;
};

}  // namespace vini::core
