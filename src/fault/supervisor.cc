#include "fault/supervisor.h"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.h"

namespace vini::fault {

Supervisor::Supervisor(sim::EventQueue& queue, SupervisorConfig config)
    : queue_(queue), config_(config), random_(config.seed) {}

void Supervisor::manage(const std::string& id, std::function<void()> stop,
                        std::function<void()> start) {
  shard_.assertHeld();
  if (children_.count(id)) return;
  Child child;
  child.stop = std::move(stop);
  child.start = std::move(start);
  child.last_start = queue_.now();
  children_.emplace(id, std::move(child));
}

Supervisor::Child& Supervisor::childOrThrow(const std::string& id) {
  shard_.assertHeld();
  auto it = children_.find(id);
  if (it == children_.end()) {
    throw std::runtime_error("supervisor does not manage '" + id + "'");
  }
  return it->second;
}

sim::Duration Supervisor::backoffFor(Child& child) {
  shard_.assertHeld();
  double delay = static_cast<double>(config_.initial_backoff);
  for (int i = 1; i < child.attempts; ++i) delay *= config_.multiplier;
  delay = std::min(delay, static_cast<double>(config_.max_backoff));
  if (config_.jitter > 0) {
    delay *= 1.0 + config_.jitter * (2.0 * random_.uniform01() - 1.0);
  }
  return static_cast<sim::Duration>(std::max(delay, 0.0));
}

void Supervisor::kill(const std::string& id) {
  shard_.assertHeld();
  Child& child = childOrThrow(id);
  if (!child.running) return;  // already dead; the restart is in flight
  // A long stable run forgives past failures.
  if (queue_.now() - child.last_start >= config_.stable_uptime) {
    child.attempts = 0;
  }
  ++child.attempts;
  child.killed_at = queue_.now();
  child.running = false;
  VINI_OBS_TIMELINE_INSTANT("supervisor/" + id, "kill", queue_.now());
  child.stop();
  if (!child.held) scheduleRestart(id, child);
}

void Supervisor::hold(const std::string& id) {
  shard_.assertHeld();
  Child& child = childOrThrow(id);
  child.held = true;
  if (child.pending != 0) {
    queue_.cancel(child.pending);
    child.pending = 0;
  }
  if (child.running) {
    if (queue_.now() - child.last_start >= config_.stable_uptime) {
      child.attempts = 0;
    }
    ++child.attempts;
    child.killed_at = queue_.now();
    child.running = false;
    child.stop();
  }
}

void Supervisor::release(const std::string& id) {
  shard_.assertHeld();
  Child& child = childOrThrow(id);
  if (!child.held) return;
  child.held = false;
  if (!child.running && child.pending == 0) scheduleRestart(id, child);
}

void Supervisor::restartNow(const std::string& id) {
  shard_.assertHeld();
  Child& child = childOrThrow(id);
  if (child.running || child.held) return;
  if (child.pending != 0) {
    queue_.cancel(child.pending);
    child.pending = 0;
  }
  completeRestart(id);
}

void Supervisor::forget(const std::string& id) {
  shard_.assertHeld();
  auto it = children_.find(id);
  if (it == children_.end()) return;
  if (it->second.pending != 0) queue_.cancel(it->second.pending);
  children_.erase(it);
}

void Supervisor::scheduleRestart(const std::string& id, Child& child) {
  shard_.assertHeld();
  const sim::Duration delay = backoffFor(child);
  child.pending = queue_.scheduleAfter(delay, "fault.supervisor",
                                       [this, id] { completeRestart(id); });
}

void Supervisor::completeRestart(const std::string& id) {
  shard_.assertHeld();
  Child& child = childOrThrow(id);
  child.pending = 0;
  if (child.running || child.held) return;
  RestartRecord record;
  record.id = id;
  record.killed_at = child.killed_at;
  record.restarted_at = queue_.now();
  record.delay = queue_.now() - child.killed_at;
  record.attempt = child.attempts;
  // The whole outage, kill to restart, as one track-visible bar.
  VINI_OBS_TIMELINE_DURATION("supervisor/" + id, "down", record.killed_at,
                             record.delay);
  child.start();
  child.running = true;
  child.last_start = queue_.now();
  ++restarts_completed_;
  log_.push_back(std::move(record));
}

bool Supervisor::isRunning(const std::string& id) const {
  shard_.assertHeld();
  auto it = children_.find(id);
  return it != children_.end() && it->second.running;
}

std::size_t Supervisor::pendingRestarts() const {
  shard_.assertHeld();
  std::size_t n = 0;
  for (const auto& [id, child] : children_) {
    if (!child.running) ++n;
  }
  return n;
}

}  // namespace vini::fault
