// Fault schedules: the general fault-injection grammar.
//
// Section 4 promises researchers they can "inject failures" and
// Section 6.2 asks for playback of real-world event traces.  The link
// up/down trace in topo/failure_trace.* covers only one fault class;
// this module generalizes it into a *fault schedule* covering
// everything a deployment actually suffers: whole-node crashes, routing
// daemon kills (with supervised restart), degraded links (extra loss,
// inflated delay, reduced bandwidth — runtime-mutable LinkConfig), and
// correlated failures through shared-risk link groups (SRLGs: one
// conduit cut takes every fiber in it down atomically).
//
// Trace format — a strict superset of the topo link trace.  Timeless
// definition lines first (by convention), then one event per line:
//
//   srlg westcoast Seattle Sunnyvale         # add link to a named group
//   srlg westcoast Seattle Denver
//   t=10 link Denver KansasCity down
//   t=40 link Denver KansasCity up
//   t=15 link Chicago NewYork degrade loss=0.2 delay=0.05 bw=10000000
//   t=45 link Chicago NewYork restore
//   t=20 srlg westcoast down
//   t=50 srlg westcoast up
//   t=25 node Houston crash
//   t=55 node Houston restart
//   t=30 proc Atlanta ospf kill
//   t=60 proc Atlanta ospf restart
//   t=35 migrate Denver to SpareWest budget=250
//
// Parsing throws std::runtime_error naming the line number and the
// offending text; static linting happens in check::checkFaultSchedule.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "topo/failure_trace.h"

namespace vini::fault {

enum class FaultKind {
  kLinkDown,
  kLinkUp,
  kLinkDegrade,
  kLinkRestore,
  kNodeCrash,
  kNodeRestart,
  kProcKill,
  kProcRestart,
  kSrlgDown,
  kSrlgUp,
  kMigrate,
};

enum class ProcClass { kOspf, kRip, kBgp };

const char* faultKindName(FaultKind kind);  ///< "link down", "node crash", ...
const char* procClassName(ProcClass proc);  ///< "ospf", "rip", "bgp"

/// Quality parameters for a degraded link.  Unset fields keep the
/// link's base value; at least one must be set for the event to lint.
struct DegradeSpec {
  std::optional<double> loss_rate;
  std::optional<double> delay_seconds;
  std::optional<double> bandwidth_bps;
};

struct FaultEvent {
  double at_seconds = 0;
  FaultKind kind = FaultKind::kLinkDown;
  /// Link events: a/b are the endpoint node names.  Node and proc
  /// events: a is the node name.  SRLG events: a is the group name.
  std::string a;
  std::string b;
  ProcClass proc = ProcClass::kOspf;  ///< proc events only
  DegradeSpec degrade;                ///< degrade events only
  /// Migrate events only: downtime budget in milliseconds (unset =
  /// migrator default).  `a` is the virtual router, `b` the destination
  /// substrate node.
  std::optional<double> budget_ms;
};

struct FaultSchedule {
  /// Named shared-risk groups: group name -> member links (endpoint
  /// name pairs).  A `srlg G down` event fails every member atomically.
  std::map<std::string, std::vector<std::pair<std::string, std::string>>> srlgs;
  std::vector<FaultEvent> events;

  /// True when the schedule uses only plain link up/down events (and no
  /// SRLGs) — i.e. it is expressible as a legacy topo link trace.
  bool linkEventsOnly() const;
  /// Convert to the legacy representation (requires linkEventsOnly()).
  std::vector<topo::LinkEvent> asLinkEvents() const;
};

/// Serialize to / parse from the text format above.  parse throws
/// std::runtime_error naming the line and offending text.
std::string emitFaultSchedule(const FaultSchedule& schedule);
FaultSchedule parseFaultSchedule(const std::string& text);

// -- Seeded campaign generation ---------------------------------------------

/// One fault class's availability model (independent exponential
/// time-to-failure / time-to-repair, like topo::FailureModel).
struct FaultClassModel {
  bool enabled = true;
  double mttf_seconds = 600.0;
  /// Mean time to repair.  For the proc class, 0 means "no explicit
  /// restart events": recovery is the Supervisor's job.
  double mttr_seconds = 60.0;
};

struct CampaignModel {
  /// Plain link up/down faults (reuses the topo availability model; its
  /// seed field seeds the whole campaign).
  topo::FailureModel link;
  FaultClassModel degrade{true, 900.0, 120.0};
  FaultClassModel node{true, 1200.0, 90.0};
  FaultClassModel proc{true, 600.0, 0.0};
  /// Live-migration events (off by default: only worlds with spare
  /// substrate nodes can honor them).  mttf is the mean gap between
  /// migrations of one router; mttr is unused (a migration completes or
  /// rolls back on its own).
  FaultClassModel migrate{false, 900.0, 0.0};
  /// Quality applied by generated degrade events.
  double degrade_loss = 0.2;
  double degrade_delay_seconds = 0.05;
  double degrade_bandwidth_bps = 10e6;
  /// Downtime budget stamped on generated migrate events.
  double migrate_budget_ms = 500.0;
};

/// One router the campaign may migrate: it ping-pongs between its home
/// substrate node and a spare.
struct MigrationTarget {
  std::string router;  ///< virtual router name
  std::string home;    ///< its original substrate node
  std::string spare;   ///< the spare substrate node to move to
};

/// What the campaign may break.  Node names must not contain '-'.
struct CampaignTargets {
  std::vector<std::string> links;       ///< "A-B" link names
  std::vector<std::string> nodes;       ///< crashable nodes
  std::vector<std::string> proc_nodes;  ///< nodes running routing daemons
  std::vector<ProcClass> proc_classes;  ///< daemon classes to kill
  std::vector<MigrationTarget> migrations;  ///< routers with a spare home
};

/// Generate a seeded fault campaign over [0, duration_seconds).  Each
/// entity evolves through an explicit up/down state machine (the same
/// horizon discipline as generateFailureTrace), so an entity never
/// fails while already failed.  Events come back sorted by time;
/// identical (targets, duration, model) always yields an identical
/// schedule.
FaultSchedule generateFaultCampaign(const CampaignTargets& targets,
                                    double duration_seconds,
                                    const CampaignModel& model);

}  // namespace vini::fault
