#include "fault/injector.h"

#include <cstring>
#include <stdexcept>

#include "obs/obs.h"
#include "sim/event_queue.h"
#include "sim/time.h"

namespace vini::fault {

FaultInjector::FaultInjector(core::EventSchedule& schedule,
                             phys::PhysNetwork& net,
                             overlay::IiasNetwork* overlay,
                             Supervisor* supervisor)
    : schedule_(schedule), net_(net), overlay_(overlay), supervisor_(supervisor) {}

phys::PhysLink& FaultInjector::linkOrThrow(const std::string& a,
                                           const std::string& b) {
  shard_.assertHeld();
  phys::PhysLink* link = net_.linkBetween(a, b);
  if (!link) {
    throw std::runtime_error("fault schedule references unknown link " + a +
                             "-" + b);
  }
  return *link;
}

FaultInjector::LinkState& FaultInjector::stateOf(const phys::PhysLink& link) {
  shard_.assertHeld();
  return link_states_[link.id()];
}

void FaultInjector::refreshLink(phys::PhysLink& link) {
  shard_.assertHeld();
  const LinkState& state = stateOf(link);
  const bool up = !state.fault_down && state.crash_holds == 0;
  if (up != link.isUp()) net_.setLinkState(link, up);
}

void FaultInjector::recordFault(const std::string& entity, const char* kind) {
  shard_.assertHeld();
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    ctx->metrics.counter("fault", entity, kind).inc();
    ctx->metrics.counter("fault", "all", kind).inc();
    if (ctx->clock != nullptr) {
      ctx->timeline.instant("fault/" + entity, kind, ctx->clock->now());
    }
  }
}

void FaultInjector::setLinkFault(const std::string& a, const std::string& b,
                                 bool down) {
  shard_.assertHeld();
  phys::PhysLink& link = linkOrThrow(a, b);
  stateOf(link).fault_down = down;
  refreshLink(link);
  recordFault(link.name(), down ? "link_down" : "link_up");
}

void FaultInjector::degradeLink(const std::string& a, const std::string& b,
                                const DegradeSpec& spec) {
  shard_.assertHeld();
  phys::PhysLink& link = linkOrThrow(a, b);
  phys::LinkConfig config = link.config();
  if (spec.loss_rate) config.loss_rate = *spec.loss_rate;
  if (spec.delay_seconds) config.propagation = sim::fromSeconds(*spec.delay_seconds);
  if (spec.bandwidth_bps) config.bandwidth_bps = *spec.bandwidth_bps;
  link.applyConfig(config);
  recordFault(link.name(), "degrade");
}

void FaultInjector::restoreLink(const std::string& a, const std::string& b) {
  shard_.assertHeld();
  phys::PhysLink& link = linkOrThrow(a, b);
  link.restoreConfig();
  recordFault(link.name(), "restore");
}

bool FaultInjector::frozen(const std::string& router) const {
  shard_.assertHeld();
  return migration_guard_ && migration_guard_(router);
}

void FaultInjector::ensureManaged(const std::string& node) {
  shard_.assertHeld();
  if (!supervisor_ || !overlay_) return;
  // Never capture daemon pointers of a router that is frozen for
  // migration: they are about to be rebuilt on another substrate node.
  if (frozen(node)) return;
  for (const auto& router : overlay_->routers()) {
    if (router->vnode().name() != node) continue;
    overlay::IiasRouter* r = router.get();
    if (xorp::OspfProcess* ospf = r->xorp().ospf()) {
      supervisor_->manage(node + "/ospf", [ospf] { ospf->stop(); },
                          [ospf] { ospf->start(); });
    }
    if (xorp::RipProcess* rip = r->xorp().rip()) {
      supervisor_->manage(node + "/rip", [rip] { rip->stop(); },
                          [rip] { rip->start(); });
    }
    if (xorp::BgpProcess* bgp = r->xorp().bgp()) {
      supervisor_->manage(node + "/bgp", [bgp] { bgp->stop(); },
                          [bgp] { bgp->start(); });
    }
    return;
  }
}

namespace {

overlay::IiasRouter* routerOnPhysNode(overlay::IiasNetwork* overlay,
                                      const std::string& phys_name) {
  if (!overlay) return nullptr;
  for (const auto& router : overlay->routers()) {
    if (router->vnode().physNode().name() == phys_name) return router.get();
  }
  return nullptr;
}

xorp::XorpInstance* xorpOnNode(overlay::IiasNetwork* overlay,
                               const std::string& vnode_name) {
  if (!overlay) return nullptr;
  overlay::IiasRouter* router = overlay->router(vnode_name);
  return router ? &router->xorp() : nullptr;
}

}  // namespace

void FaultInjector::crashNode(const std::string& name) {
  shard_.assertHeld();
  if (crashed_nodes_.count(name)) return;  // already down
  phys::PhysNode* node = net_.nodeByName(name);
  if (!node) {
    throw std::runtime_error("fault schedule references unknown node " + name);
  }
  crashed_nodes_.insert(name);
  // A dead machine's routing daemons die with it, and no restart can
  // happen until the machine itself comes back (supervisor hold).
  if (overlay::IiasRouter* router = routerOnPhysNode(overlay_, name)) {
    const std::string vnode = router->vnode().name();
    if (!frozen(vnode)) {
      ensureManaged(vnode);
      if (supervisor_) {
        for (const char* cls : {"ospf", "rip", "bgp"}) {
          const std::string id = vnode + "/" + cls;
          if (supervisor_->manages(id)) supervisor_->hold(id);
        }
      } else {
        router->xorp().stop();
      }
    }
  }
  // Every attached link loses carrier.
  for (const auto& link : net_.links()) {
    if (!link->attaches(node->id())) continue;
    ++stateOf(*link).crash_holds;
    refreshLink(*link);
  }
  recordFault(name, "node_crash");
}

void FaultInjector::restartNode(const std::string& name) {
  shard_.assertHeld();
  if (!crashed_nodes_.count(name)) return;  // not down
  phys::PhysNode* node = net_.nodeByName(name);
  if (!node) {
    throw std::runtime_error("fault schedule references unknown node " + name);
  }
  crashed_nodes_.erase(name);
  for (const auto& link : net_.links()) {
    if (!link->attaches(node->id())) continue;
    LinkState& state = stateOf(*link);
    if (state.crash_holds > 0) --state.crash_holds;
    refreshLink(*link);
  }
  if (overlay::IiasRouter* router = routerOnPhysNode(overlay_, name)) {
    const std::string vnode = router->vnode().name();
    if (!frozen(vnode)) {
      if (supervisor_) {
        for (const char* cls : {"ospf", "rip", "bgp"}) {
          const std::string id = vnode + "/" + cls;
          if (supervisor_->manages(id)) supervisor_->release(id);
        }
      } else {
        router->xorp().start();
      }
    }
  }
  recordFault(name, "node_restart");
}

void FaultInjector::procEvent(const std::string& node, ProcClass proc,
                              bool kill) {
  shard_.assertHeld();
  xorp::XorpInstance* xorp = xorpOnNode(overlay_, node);
  if (!xorp) {
    throw std::runtime_error("fault schedule references unknown router node " +
                             node);
  }
  const std::string id = node + "/" + procClassName(proc);
  if (frozen(node)) {
    // The daemons are checkpointed and mid-flight; the kill "lands" on a
    // process that no longer exists here.  Count it and move on.
    recordFault(id, "proc_skip_frozen");
    return;
  }
  ensureManaged(node);
  if (supervisor_ && supervisor_->manages(id)) {
    kill ? supervisor_->kill(id) : supervisor_->restartNow(id);
  } else {
    switch (proc) {
      case ProcClass::kOspf:
        if (xorp->ospf()) kill ? xorp->ospf()->stop() : xorp->ospf()->start();
        break;
      case ProcClass::kRip:
        if (xorp->rip()) kill ? xorp->rip()->stop() : xorp->rip()->start();
        break;
      case ProcClass::kBgp:
        if (xorp->bgp()) kill ? xorp->bgp()->stop() : xorp->bgp()->start();
        break;
    }
  }
  recordFault(id, kill ? "proc_kill" : "proc_restart");
}

void FaultInjector::srlgEvent(const std::string& group, bool down) {
  shard_.assertHeld();
  auto it = srlgs_.find(group);
  if (it == srlgs_.end()) {
    throw std::runtime_error("fault schedule references undefined srlg " +
                             group);
  }
  // One scheduled thunk fails every member: atomic at simulation time.
  for (const auto& [a, b] : it->second) {
    phys::PhysLink& link = linkOrThrow(a, b);
    stateOf(link).fault_down = down;
    refreshLink(link);
  }
  recordFault(group, down ? "srlg_down" : "srlg_up");
}

void FaultInjector::apply(const FaultSchedule& schedule) {
  shard_.assertHeld();
  // Validate up front so a bad schedule fails before anything runs.
  for (const auto& [group, members] : schedule.srlgs) {
    for (const auto& [a, b] : members) linkOrThrow(a, b);
    srlgs_[group] = members;
  }
  for (const auto& event : schedule.events) {
    switch (event.kind) {
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
      case FaultKind::kLinkDegrade:
      case FaultKind::kLinkRestore:
        linkOrThrow(event.a, event.b);
        break;
      case FaultKind::kNodeCrash:
      case FaultKind::kNodeRestart:
        if (!net_.hasNode(event.a)) {
          throw std::runtime_error("fault schedule references unknown node " +
                                   event.a);
        }
        break;
      case FaultKind::kProcKill:
      case FaultKind::kProcRestart:
        if (!xorpOnNode(overlay_, event.a)) {
          throw std::runtime_error(
              "fault schedule references unknown router node " + event.a);
        }
        break;
      case FaultKind::kSrlgDown:
      case FaultKind::kSrlgUp:
        if (!srlgs_.count(event.a)) {
          throw std::runtime_error("fault schedule references undefined srlg " +
                                   event.a);
        }
        break;
      case FaultKind::kMigrate:
        if (!migration_handler_) {
          throw std::runtime_error(
              "fault schedule contains migrate events but no migration "
              "handler is installed");
        }
        if (overlay_ == nullptr || overlay_->router(event.a) == nullptr) {
          throw std::runtime_error(
              "fault schedule migrates unknown router " + event.a);
        }
        if (!net_.hasNode(event.b)) {
          throw std::runtime_error(
              "fault schedule migrates to unknown node " + event.b);
        }
        break;
    }
  }

  for (const auto& event : schedule.events) {
    std::string label = "fault ";
    switch (event.kind) {
      case FaultKind::kLinkDown:
      case FaultKind::kLinkUp:
      case FaultKind::kLinkDegrade:
      case FaultKind::kLinkRestore:
        label += "link " + event.a + "-" + event.b;
        break;
      case FaultKind::kNodeCrash:
      case FaultKind::kNodeRestart:
        label += "node " + event.a;
        break;
      case FaultKind::kProcKill:
      case FaultKind::kProcRestart:
        label += "proc " + event.a + " " + procClassName(event.proc);
        break;
      case FaultKind::kSrlgDown:
      case FaultKind::kSrlgUp:
        label += "srlg " + event.a;
        break;
      case FaultKind::kMigrate:
        label += "migrate " + event.a + " to " + event.b;
        break;
    }
    const char* space = std::strrchr(faultKindName(event.kind), ' ');
    label += space ? space : "";

    const FaultEvent ev = event;
    schedule_.atSeconds(event.at_seconds, label, [this, ev] {
      switch (ev.kind) {
        case FaultKind::kLinkDown: setLinkFault(ev.a, ev.b, true); break;
        case FaultKind::kLinkUp: setLinkFault(ev.a, ev.b, false); break;
        case FaultKind::kLinkDegrade: degradeLink(ev.a, ev.b, ev.degrade); break;
        case FaultKind::kLinkRestore: restoreLink(ev.a, ev.b); break;
        case FaultKind::kNodeCrash: crashNode(ev.a); break;
        case FaultKind::kNodeRestart: restartNode(ev.a); break;
        case FaultKind::kProcKill: procEvent(ev.a, ev.proc, true); break;
        case FaultKind::kProcRestart: procEvent(ev.a, ev.proc, false); break;
        case FaultKind::kSrlgDown: srlgEvent(ev.a, true); break;
        case FaultKind::kSrlgUp: srlgEvent(ev.a, false); break;
        case FaultKind::kMigrate:
          if (migration_handler_) {
            recordFault(ev.a, "migrate");
            migration_handler_(ev.a, ev.b, ev.budget_ms);
          }
          break;
      }
    });
  }
}

}  // namespace vini::fault
