// Supervisor: restart killed processes with exponential backoff.
//
// PL-VINI keeps long-running daemons alive the way any deployment does:
// a supervisor notices the death and restarts the process after a
// backoff that grows exponentially with consecutive failures (so a
// crash-looping daemon does not saturate its node) and carries jitter
// (so daemons killed by one correlated event do not restart in
// lockstep).  The restarted process comes back with *no* state — the
// stop/start hooks are expected to implement full state loss, and the
// routing protocols re-learn adjacencies and routes from scratch.
//
// All randomness is drawn from a seeded stream, so a supervised chaos
// run is bit-reproducible.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/thread_annotations.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace vini::fault {

struct SupervisorConfig {
  sim::Duration initial_backoff = sim::kSecond;
  double multiplier = 2.0;
  sim::Duration max_backoff = 60 * sim::kSecond;
  /// Relative jitter: the delay is scaled by a uniform factor in
  /// [1 - jitter, 1 + jitter].
  double jitter = 0.25;
  /// A process that stayed up this long has its failure count forgiven;
  /// the next death backs off from initial_backoff again.
  sim::Duration stable_uptime = 300 * sim::kSecond;
  std::uint64_t seed = 1;
};

/// One completed (or scheduled) supervised restart, for the audit log.
struct RestartRecord {
  std::string id;
  sim::Time killed_at = 0;
  sim::Time restarted_at = 0;
  sim::Duration delay = 0;
  int attempt = 0;  ///< consecutive-failure count at the time of death
};

class Supervisor {
 public:
  Supervisor(sim::EventQueue& queue, SupervisorConfig config = {});

  /// Register a child.  `stop` must leave the process dead with no
  /// timers pending; `start` must bring it back with empty state.  The
  /// child is assumed to be running now.  Re-registering an id is a
  /// no-op (the first hooks win), so injectors may register lazily.
  void manage(const std::string& id, std::function<void()> stop,
              std::function<void()> start);
  bool manages(const std::string& id) const {
    shard_.assertHeld();
    return children_.count(id) != 0;
  }

  /// Kill the child now and schedule a backoff-delayed restart.
  /// No-op if it is already dead (a second kill has nothing to do).
  void kill(const std::string& id);

  /// Kill the child and keep it down: no restart until release().
  /// Models the whole node being down — the supervisor itself died.
  void hold(const std::string& id);

  /// End a hold: schedules a normal backoff-delayed restart.
  void release(const std::string& id);

  /// Explicit (trace-driven) restart: cancels any pending backoff and
  /// starts the child immediately.  No-op while held or running.
  void restartNow(const std::string& id);

  /// Drop a child without touching it: cancels any pending restart and
  /// erases the registration.  Live migration uses this before freezing
  /// a router — the registered hooks capture pointers into daemons that
  /// will be rebuilt elsewhere, so they must never fire again; the
  /// injector lazily re-manages the rebuilt daemons on the next fault.
  /// No-op for unknown ids.
  void forget(const std::string& id);

  bool isRunning(const std::string& id) const;
  /// Children dead with a restart scheduled (or awaiting release).
  std::size_t pendingRestarts() const;
  std::uint64_t restartsCompleted() const {
    shard_.assertHeld();
    return restarts_completed_;
  }
  /// Every restart that actually ran, in execution order.
  const std::vector<RestartRecord>& log() const {
    shard_.assertHeld();
    return log_;
  }
  const SupervisorConfig& config() const { return config_; }

 private:
  struct Child {
    std::function<void()> stop;
    std::function<void()> start;
    bool running = true;
    bool held = false;
    int attempts = 0;             ///< consecutive failures
    sim::Time last_start = 0;
    sim::Time killed_at = 0;
    sim::EventId pending = 0;     ///< scheduled restart, 0 = none
  };

  Child& childOrThrow(const std::string& id);
  sim::Duration backoffFor(Child& child);
  void scheduleRestart(const std::string& id, Child& child);
  void completeRestart(const std::string& id);

  // The supervisor runs on the shard owning its queue; kills arriving
  // from fault events on other shards will come through the mailbox.
  core::ShardToken shard_;
  sim::EventQueue& queue_;
  SupervisorConfig config_;
  // cross-shard: backoff draws must stay on one stream for determinism.
  sim::Random random_ VINI_GUARDED_BY(shard_);
  /// std::map: deterministic iteration for any future bulk operation.
  std::map<std::string, Child> children_ VINI_GUARDED_BY(shard_);
  std::vector<RestartRecord> log_ VINI_GUARDED_BY(shard_);
  std::uint64_t restarts_completed_ VINI_GUARDED_BY(shard_) = 0;
};

}  // namespace vini::fault
