// FaultInjector: schedules a FaultSchedule against a live world.
//
// The injector turns parsed/generated fault events into labelled
// EventSchedule actions, so every injected fault lands in the
// experiment's audit log exactly like a scripted action.  It composes
// the two reasons a link can be down — an explicit link fault and a
// crashed endpoint node — as independent holds: the link comes back
// only when both clear.  Killed routing daemons are handed to the
// Supervisor (backoff restart, full state loss); without one, kills and
// restarts act directly on the processes.
//
// Every applied fault is mirrored into the obs metrics registry as
// fault.<entity>.<kind> counters (plus fault.all.* totals) when an obs
// context is installed — the chaos report and dashboards read them.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "core/schedule.h"
#include "core/thread_annotations.h"
#include "fault/fault.h"
#include "fault/supervisor.h"
#include "overlay/iias.h"
#include "phys/network.h"

namespace vini::fault {

class FaultInjector {
 public:
  /// `overlay` and `supervisor` may be null: without an overlay, node
  /// and proc events are rejected at apply(); without a supervisor,
  /// killed processes stay dead until an explicit restart event.
  FaultInjector(core::EventSchedule& schedule, phys::PhysNetwork& net,
                overlay::IiasNetwork* overlay = nullptr,
                Supervisor* supervisor = nullptr);

  /// Validate every event against the world and schedule it.  Throws
  /// std::runtime_error on unknown links/nodes/groups or on node/proc
  /// events without an overlay.
  void apply(const FaultSchedule& schedule);

  // -- Immediate operations (the scheduled thunks call these; tests may
  // call them directly) ----------------------------------------------------

  void setLinkFault(const std::string& a, const std::string& b, bool down);
  void degradeLink(const std::string& a, const std::string& b,
                   const DegradeSpec& spec);
  void restoreLink(const std::string& a, const std::string& b);
  void crashNode(const std::string& name);
  void restartNode(const std::string& name);
  void procEvent(const std::string& node, ProcClass proc, bool kill);
  /// Fail/restore every member of a defined SRLG atomically (one event).
  void srlgEvent(const std::string& group, bool down);

  bool nodeCrashed(const std::string& name) const {
    shard_.assertHeld();
    return crashed_nodes_.count(name) != 0;
  }

  // -- Live migration hooks ---------------------------------------------------

  /// Handler for `migrate <router> to <node>` events: (router,
  /// destination substrate node, optional budget in ms).  Without one,
  /// apply() rejects schedules containing migrate events.
  using MigrationHandler = std::function<void(
      const std::string&, const std::string&, std::optional<double>)>;
  void setMigrationHandler(MigrationHandler handler) {
    shard_.assertHeld();
    migration_handler_ = std::move(handler);
  }

  /// Queried with a virtual router name before any daemon-level
  /// operation; returning true means the router is frozen mid-migration
  /// and its daemons must not be touched (their pointers are about to be
  /// rebuilt on another node).  Link-level effects still apply.
  void setMigrationGuard(std::function<bool(const std::string&)> guard) {
    shard_.assertHeld();
    migration_guard_ = std::move(guard);
  }

 private:
  struct LinkState {
    bool fault_down = false;  ///< explicit link fault held
    int crash_holds = 0;      ///< endpoints currently crashed
  };

  phys::PhysLink& linkOrThrow(const std::string& a, const std::string& b);
  void refreshLink(phys::PhysLink& link);
  LinkState& stateOf(const phys::PhysLink& link);
  /// Register the node's routing daemons with the supervisor (id
  /// "<node>/<class>") the first time a fault touches them.
  void ensureManaged(const std::string& node);
  void recordFault(const std::string& entity, const char* kind);
  bool frozen(const std::string& router) const;

  // Fault events touch links whose endpoints may live on different
  // shards; the injector will run on the shard owning the schedule's
  // queue and reach others through their mailboxes.
  core::ShardToken shard_;
  core::EventSchedule& schedule_;
  phys::PhysNetwork& net_;
  overlay::IiasNetwork* overlay_;
  Supervisor* supervisor_;
  std::map<std::string, std::vector<std::pair<std::string, std::string>>>
      srlgs_ VINI_GUARDED_BY(shard_);
  // cross-shard: a link's endpoints may be owned by two shards.
  std::map<int, LinkState> link_states_ VINI_GUARDED_BY(shard_);  // by PhysLink::id()
  std::set<std::string> crashed_nodes_ VINI_GUARDED_BY(shard_);
  MigrationHandler migration_handler_ VINI_GUARDED_BY(shard_);
  std::function<bool(const std::string&)> migration_guard_
      VINI_GUARDED_BY(shard_);
};

}  // namespace vini::fault
