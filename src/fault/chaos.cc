#include "fault/chaos.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "obs/obs.h"

namespace vini::fault {

namespace {

/// Fixed-width ns-precision timestamp: integer arithmetic only, so the
/// log is byte-identical across runs and platforms.
std::string formatTime(sim::Time t) {
  const auto secs = t / sim::kSecond;
  const auto frac = t % sim::kSecond;
  std::ostringstream os;
  os << secs << ".";
  std::string f = std::to_string(frac);
  os << std::string(9 - f.size(), '0') << f;
  return os.str();
}

struct LogLine {
  sim::Time when = 0;
  std::string text;
};

void auditForwardingLoops(topo::World& world, check::Report& report) {
  // Map every overlay address to the router owning it.
  std::unordered_map<packet::IpAddress, overlay::IiasRouter*> owner;
  for (const auto& router : world.iias->routers()) {
    owner[router->vnode().tapAddress()] = router.get();
    for (const auto& iface : router->vnode().interfaces()) {
      owner[iface->address()] = router.get();
    }
  }
  for (const auto& src : world.iias->routers()) {
    for (const auto& dst : world.iias->routers()) {
      if (src.get() == dst.get()) continue;
      const packet::IpAddress target = dst->vnode().tapAddress();
      overlay::IiasRouter* cur = src.get();
      std::unordered_set<overlay::IiasRouter*> visited{cur};
      while (true) {
        const auto entry = cur->fibElement().fib().lookup(target);
        if (!entry) break;           // blackhole: lost, but not looping
        if (entry->port != 0) break; // delivered off the tunnel mesh
        if (entry->next_hop.isZero()) break;
        auto it = owner.find(entry->next_hop);
        if (it == owner.end()) break;
        overlay::IiasRouter* next = it->second;
        if (!visited.insert(next).second) {
          report.error("V121",
                       "route " + src->vnode().name() + " -> " +
                           dst->vnode().name(),
                       "forwarding loop: " + next->vnode().name() +
                           " revisited while resolving " + target.str());
          break;
        }
        cur = next;
      }
    }
  }
}

void auditConservation(topo::World& world, check::Report& report) {
  obs::Obs* ctx = VINI_OBS_CTX();
  if (!ctx) return;  // no registry to cross-check against
  for (const auto& link : world.net.links()) {
    const struct {
      const char* suffix;
      const phys::Channel& channel;
    } dirs[] = {{"/ab", link->channelFrom(link->nodeA())},
                {"/ba", link->channelFrom(link->nodeB())}};
    for (const auto& dir : dirs) {
      const std::string label = link->name() + dir.suffix;
      const phys::ChannelStats& stats = dir.channel.stats();
      const struct {
        const char* name;
        std::uint64_t value;
      } counters[] = {{"tx_packets", stats.tx_packets},
                      {"tx_bytes", stats.tx_bytes},
                      {"queue_drops", stats.queue_drops},
                      {"loss_drops", stats.loss_drops},
                      {"down_drops", stats.down_drops}};
      for (const auto& c : counters) {
        const obs::Counter* counter =
            ctx->metrics.findCounter("phys.link", label, c.name);
        if (!counter) continue;  // channel predates the obs context
        if (counter->value() != c.value) {
          report.error("V122", "channel " + label,
                       std::string(c.name) + " mismatch: registry " +
                           std::to_string(counter->value()) +
                           " != channel stats " + std::to_string(c.value));
        }
      }
    }
  }
}

void auditDeadTimers(topo::World& world, check::Report& report) {
  for (const auto& router : world.iias->routers()) {
    xorp::XorpInstance& xorp = router->xorp();
    if (xorp.ospf() && !xorp.ospf()->running() && !xorp.ospf()->timersQuiet()) {
      report.error("V123", "node " + router->vnode().name(),
                   "dead ospf process still owns armed timers");
    }
    if (xorp.rip() && !xorp.rip()->running() && !xorp.rip()->timersQuiet()) {
      report.error("V123", "node " + router->vnode().name(),
                   "dead rip process still owns armed timers");
    }
  }
}

}  // namespace

CampaignModel denseCampaignModel(std::uint64_t seed) {
  CampaignModel model;
  model.link.mttf_seconds = 60.0;
  model.link.mttr_seconds = 15.0;
  model.link.seed = seed;
  model.degrade = FaultClassModel{true, 80.0, 20.0};
  model.node = FaultClassModel{true, 150.0, 30.0};
  model.proc = FaultClassModel{true, 70.0, 0.0};
  // Dense enough for a handful of moves per router; stays disabled
  // until a campaign opts in (ChaosOptions::include_migrations).
  model.migrate = FaultClassModel{false, 45.0, 0.0};
  model.degrade_loss = 0.15;
  model.degrade_delay_seconds = 0.03;
  model.degrade_bandwidth_bps = 20e6;
  return model;
}

ChaosReport runChaosCampaign(topo::World& world, const ChaosOptions& options) {
  if (!world.iias) {
    throw std::runtime_error("chaos campaign needs a world with an overlay");
  }
  ChaosReport report;

  // Baseline: the world must be converged before we start breaking it.
  if (!world.runUntilConverged()) {
    report.invariants.error("V120", "baseline",
                            "world failed to converge before the campaign");
    report.event_log = "";
    return report;
  }

  // What the campaign may break.
  CampaignTargets targets;
  if (options.include_link_faults || options.include_degrades) {
    for (const auto& link : world.net.links()) {
      targets.links.push_back(link->name());
    }
  }
  bool has_ospf = false, has_rip = false, has_bgp = false;
  for (const auto& router : world.iias->routers()) {
    const std::string phys_name = router->vnode().physNode().name();
    if (options.include_node_crashes) targets.nodes.push_back(phys_name);
    if (options.include_proc_faults) {
      targets.proc_nodes.push_back(router->vnode().name());
    }
    has_ospf = has_ospf || router->xorp().ospf() != nullptr;
    has_rip = has_rip || router->xorp().rip() != nullptr;
    has_bgp = has_bgp || router->xorp().bgp() != nullptr;
  }
  if (options.include_proc_faults) {
    if (has_ospf) targets.proc_classes.push_back(ProcClass::kOspf);
    if (has_rip) targets.proc_classes.push_back(ProcClass::kRip);
    if (has_bgp) targets.proc_classes.push_back(ProcClass::kBgp);
  }
  if (options.include_migrations) {
    // Spares = substrate nodes hosting no overlay router, in network
    // order; each router pairs with one spare and ping-pongs between
    // its home and that spare for the whole campaign.
    std::unordered_set<std::string> hosting;
    for (const auto& router : world.iias->routers()) {
      hosting.insert(router->vnode().physNode().name());
    }
    std::vector<std::string> spares;
    for (const auto& node : world.net.nodes()) {
      if (!hosting.count(node->name())) spares.push_back(node->name());
    }
    const auto& routers = world.iias->routers();
    for (std::size_t i = 0; i < routers.size() && i < spares.size(); ++i) {
      targets.migrations.push_back(
          MigrationTarget{routers[i]->vnode().name(),
                          routers[i]->vnode().physNode().name(), spares[i]});
    }
  }

  CampaignModel model = options.model;
  model.link.seed = options.seed;
  if (!options.include_link_faults) model.link.mttf_seconds = 0;
  model.degrade.enabled = model.degrade.enabled && options.include_degrades;
  model.node.enabled = model.node.enabled && options.include_node_crashes;
  model.proc.enabled = model.proc.enabled && options.include_proc_faults;
  model.migrate.enabled =
      options.include_migrations && !targets.migrations.empty();

  const FaultSchedule schedule =
      generateFaultCampaign(targets, options.duration_seconds, model);
  report.fault_event_count = schedule.events.size();

  SupervisorConfig sup_config = options.supervisor;
  sup_config.seed = options.supervisor.seed ^
                    (options.seed * 0x9e3779b97f4a7c15ull);
  Supervisor supervisor(world.queue, sup_config);
  FaultInjector injector(world.schedule, world.net, world.iias.get(),
                         &supervisor);
  std::unique_ptr<migrate::MigrationManager> migrations;
  if (options.include_migrations) {
    migrate::MigrationPolicy policy = options.migration;
    policy.seed =
        options.migration.seed ^ (options.seed * 0x9e3779b97f4a7c15ull);
    policy.default_budget_ms = options.model.migrate_budget_ms;
    migrations = std::make_unique<migrate::MigrationManager>(
        world.queue, world.net, *world.vini, *world.iias, policy);
    migrations->setDaemonForget(
        [&supervisor](const std::string& id) { supervisor.forget(id); });
    migrations->setNodeProbe([&injector](const std::string& node) {
      return !injector.nodeCrashed(node);
    });
    injector.setMigrationHandler(
        [&manager = *migrations](const std::string& router,
                                 const std::string& dest,
                                 std::optional<double> budget_ms) {
          manager.requestMigration(router, dest, budget_ms);
        });
    injector.setMigrationGuard([&manager = *migrations](
                                   const std::string& router) {
      return manager.frozen(router);
    });
  }
  const std::size_t log_before = world.schedule.log().size();
  injector.apply(schedule);

  // Run through the storm: past the last scheduled event (repairs may
  // cross the horizon), then a recovery window sized from the slowest
  // recovery paths — the OSPF dead interval and the supervisor's
  // capped backoff.
  double last_event = options.duration_seconds;
  for (const auto& event : schedule.events) {
    last_event = std::max(last_event, event.at_seconds);
  }
  double recovery = options.recovery_seconds;
  if (recovery <= 0) {
    double dead_s = 10.0;
    if (!world.iias->routers().empty()) {
      dead_s = sim::toSeconds(
          world.iias->routers().front()->config().ospf.dead_interval);
    }
    recovery = 3.0 * dead_s + 2.0 * sim::toSeconds(sup_config.max_backoff) + 30.0;
  }
  world.queue.runUntil(sim::fromSeconds(last_event));
  // Let every supervised restart land (backoffs can stack past the
  // recovery window under repeated kills).
  for (int round = 0; round < 64 && supervisor.pendingRestarts() > 0; ++round) {
    world.queue.runUntil(world.queue.now() +
                         std::max(sup_config.max_backoff, 10 * sim::kSecond));
  }

  report.converged =
      world.runUntilConverged(sim::fromSeconds(recovery));
  if (!report.converged) {
    report.invariants.error(
        "V120", "recovery",
        "overlay failed to re-converge within " + formatTime(sim::fromSeconds(recovery)) +
            " s of quiescence");
  }
  report.supervised_restarts = supervisor.restartsCompleted();

  // Invariant audits over the quiesced world.
  auditForwardingLoops(world, report.invariants);
  auditConservation(world, report.invariants);
  auditDeadTimers(world, report.invariants);
  if (migrations) {
    migrations->auditInvariants(report.invariants);
    report.migrations_enabled = true;
    for (const auto& record : migrations->records()) {
      ++report.migrations_requested;
      if (record.completed) ++report.migrations_completed;
      if (record.rolled_back) ++report.migrations_rolled_back;
    }
    report.migration_json = migrations->reportJson();
  }

  // Deterministic event log: injected faults (from the experiment
  // schedule) merged with supervised restarts, sorted by time.
  std::vector<LogLine> lines;
  const auto& sched_log = world.schedule.log();
  for (std::size_t i = log_before; i < sched_log.size(); ++i) {
    lines.push_back(LogLine{sched_log[i].when, sched_log[i].label});
  }
  for (const auto& record : supervisor.log()) {
    lines.push_back(
        LogLine{record.restarted_at,
                "supervisor restart " + record.id + " attempt " +
                    std::to_string(record.attempt) + " after " +
                    formatTime(record.delay) + " s"});
  }
  if (migrations) {
    for (const auto& entry : migrations->log()) {
      lines.push_back(LogLine{entry.when, entry.text});
    }
  }
  std::stable_sort(lines.begin(), lines.end(),
                   [](const LogLine& x, const LogLine& y) {
                     return x.when < y.when;
                   });
  std::ostringstream log;
  for (const auto& line : lines) {
    log << "t=" << formatTime(line.when) << " " << line.text << "\n";
  }
  report.event_log = log.str();
  return report;
}

std::string ChaosReport::format() const {
  std::ostringstream os;
  os << "chaos campaign: " << fault_event_count << " fault events, "
     << supervised_restarts << " supervised restarts\n";
  if (migrations_enabled) {
    os << "migrations: " << migrations_requested << " requested, "
       << migrations_completed << " completed, " << migrations_rolled_back
       << " rolled back\n";
  }
  os << "converged: " << (converged ? "yes" : "NO") << "\n";
  os << "event log:\n" << event_log;
  if (invariants.empty()) {
    os << "invariants: clean\n";
  } else {
    os << "invariants:\n" << invariants.format();
  }
  os << (passed() ? "PASS" : "FAIL") << "\n";
  return os.str();
}

}  // namespace vini::fault
