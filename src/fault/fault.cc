#include "fault/fault.h"

#include <algorithm>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "sim/random.h"

namespace vini::fault {

const char* faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kLinkDown: return "link down";
    case FaultKind::kLinkUp: return "link up";
    case FaultKind::kLinkDegrade: return "link degrade";
    case FaultKind::kLinkRestore: return "link restore";
    case FaultKind::kNodeCrash: return "node crash";
    case FaultKind::kNodeRestart: return "node restart";
    case FaultKind::kProcKill: return "proc kill";
    case FaultKind::kProcRestart: return "proc restart";
    case FaultKind::kSrlgDown: return "srlg down";
    case FaultKind::kSrlgUp: return "srlg up";
    case FaultKind::kMigrate: return "migrate";
  }
  return "?";
}

const char* procClassName(ProcClass proc) {
  switch (proc) {
    case ProcClass::kOspf: return "ospf";
    case ProcClass::kRip: return "rip";
    case ProcClass::kBgp: return "bgp";
  }
  return "?";
}

bool FaultSchedule::linkEventsOnly() const {
  if (!srlgs.empty()) return false;
  for (const auto& event : events) {
    if (event.kind != FaultKind::kLinkDown && event.kind != FaultKind::kLinkUp) {
      return false;
    }
  }
  return true;
}

std::vector<topo::LinkEvent> FaultSchedule::asLinkEvents() const {
  std::vector<topo::LinkEvent> out;
  out.reserve(events.size());
  for (const auto& event : events) {
    if (event.kind != FaultKind::kLinkDown && event.kind != FaultKind::kLinkUp) {
      throw std::runtime_error("schedule is not expressible as a link trace: " +
                               std::string(faultKindName(event.kind)) +
                               " event present");
    }
    out.push_back(topo::LinkEvent{event.at_seconds, event.a, event.b,
                                  event.kind == FaultKind::kLinkUp});
  }
  return out;
}

// ---------------------------------------------------------------------------
// Serialization

namespace {

/// max_digits10 precision so emit -> parse round-trips bit-exactly even
/// for generated (irrational-looking) campaign timestamps.
std::string formatDouble(double v) {
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<double>::max_digits10) << v;
  return os.str();
}

}  // namespace

std::string emitFaultSchedule(const FaultSchedule& schedule) {
  std::ostringstream os;
  for (const auto& [group, members] : schedule.srlgs) {
    for (const auto& [a, b] : members) {
      os << "srlg " << group << " " << a << " " << b << "\n";
    }
  }
  for (const auto& event : schedule.events) {
    os << "t=" << formatDouble(event.at_seconds) << " ";
    switch (event.kind) {
      case FaultKind::kLinkDown:
        os << "link " << event.a << " " << event.b << " down";
        break;
      case FaultKind::kLinkUp:
        os << "link " << event.a << " " << event.b << " up";
        break;
      case FaultKind::kLinkDegrade:
        os << "link " << event.a << " " << event.b << " degrade";
        if (event.degrade.loss_rate) {
          os << " loss=" << formatDouble(*event.degrade.loss_rate);
        }
        if (event.degrade.delay_seconds) {
          os << " delay=" << formatDouble(*event.degrade.delay_seconds);
        }
        if (event.degrade.bandwidth_bps) {
          os << " bw=" << formatDouble(*event.degrade.bandwidth_bps);
        }
        break;
      case FaultKind::kLinkRestore:
        os << "link " << event.a << " " << event.b << " restore";
        break;
      case FaultKind::kNodeCrash:
        os << "node " << event.a << " crash";
        break;
      case FaultKind::kNodeRestart:
        os << "node " << event.a << " restart";
        break;
      case FaultKind::kProcKill:
        os << "proc " << event.a << " " << procClassName(event.proc) << " kill";
        break;
      case FaultKind::kProcRestart:
        os << "proc " << event.a << " " << procClassName(event.proc)
           << " restart";
        break;
      case FaultKind::kSrlgDown:
        os << "srlg " << event.a << " down";
        break;
      case FaultKind::kSrlgUp:
        os << "srlg " << event.a << " up";
        break;
      case FaultKind::kMigrate:
        os << "migrate " << event.a << " to " << event.b;
        if (event.budget_ms) os << " budget=" << formatDouble(*event.budget_ms);
        break;
    }
    os << "\n";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// Parsing

namespace {

[[noreturn]] void badLine(int lineno, const std::string& line) {
  throw std::runtime_error("bad trace line " + std::to_string(lineno) + ": " +
                           line);
}

double parseTime(const std::string& t_word, int lineno,
                 const std::string& line) {
  if (t_word.rfind("t=", 0) != 0) badLine(lineno, line);
  try {
    std::size_t used = 0;
    const double value = std::stod(t_word.substr(2), &used);
    if (used != t_word.size() - 2) throw std::invalid_argument(t_word);
    return value;
  } catch (const std::exception&) {
    throw std::runtime_error("bad time '" + t_word + "' on trace line " +
                             std::to_string(lineno) + ": " + line);
  }
}

double parseNumber(const std::string& word, const std::string& value,
                   int lineno, const std::string& line) {
  try {
    std::size_t used = 0;
    const double parsed = std::stod(value, &used);
    if (used != value.size() || value.empty()) {
      throw std::invalid_argument(value);
    }
    return parsed;
  } catch (const std::exception&) {
    throw std::runtime_error("bad value '" + word + "' on trace line " +
                             std::to_string(lineno) + ": " + line);
  }
}

std::optional<ProcClass> procClassFor(const std::string& word) {
  if (word == "ospf") return ProcClass::kOspf;
  if (word == "rip") return ProcClass::kRip;
  if (word == "bgp") return ProcClass::kBgp;
  return std::nullopt;
}

}  // namespace

FaultSchedule parseFaultSchedule(const std::string& text) {
  FaultSchedule schedule;
  std::istringstream lines(text);
  std::string line;
  int lineno = 0;
  while (std::getline(lines, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream words(line);
    std::string first;
    if (!(words >> first)) continue;

    // Timeless definition line: srlg <group> <A> <B>.
    if (first == "srlg") {
      std::string group, a, b, extra;
      if (!(words >> group >> a >> b) || (words >> extra)) {
        badLine(lineno, line);
      }
      schedule.srlgs[group].emplace_back(a, b);
      continue;
    }

    FaultEvent event;
    event.at_seconds = parseTime(first, lineno, line);
    std::string subject;
    if (!(words >> subject)) badLine(lineno, line);

    if (subject == "link") {
      std::string a, b, action;
      if (!(words >> a >> b >> action)) badLine(lineno, line);
      event.a = a;
      event.b = b;
      if (action == "up" || action == "down" || action == "restore") {
        event.kind = action == "up"     ? FaultKind::kLinkUp
                     : action == "down" ? FaultKind::kLinkDown
                                        : FaultKind::kLinkRestore;
        std::string extra;
        if (words >> extra) badLine(lineno, line);
      } else if (action == "degrade") {
        event.kind = FaultKind::kLinkDegrade;
        std::string kv;
        while (words >> kv) {
          const auto eq = kv.find('=');
          if (eq == std::string::npos) badLine(lineno, line);
          const std::string key = kv.substr(0, eq);
          const double value = parseNumber(kv, kv.substr(eq + 1), lineno, line);
          if (key == "loss") {
            event.degrade.loss_rate = value;
          } else if (key == "delay") {
            event.degrade.delay_seconds = value;
          } else if (key == "bw") {
            event.degrade.bandwidth_bps = value;
          } else {
            badLine(lineno, line);
          }
        }
      } else {
        badLine(lineno, line);
      }
    } else if (subject == "node") {
      std::string name, action, extra;
      if (!(words >> name >> action) || (words >> extra)) badLine(lineno, line);
      event.a = name;
      if (action == "crash") {
        event.kind = FaultKind::kNodeCrash;
      } else if (action == "restart") {
        event.kind = FaultKind::kNodeRestart;
      } else {
        badLine(lineno, line);
      }
    } else if (subject == "proc") {
      std::string name, proc_word, action, extra;
      if (!(words >> name >> proc_word >> action) || (words >> extra)) {
        badLine(lineno, line);
      }
      event.a = name;
      const auto proc = procClassFor(proc_word);
      if (!proc) badLine(lineno, line);
      event.proc = *proc;
      if (action == "kill") {
        event.kind = FaultKind::kProcKill;
      } else if (action == "restart") {
        event.kind = FaultKind::kProcRestart;
      } else {
        badLine(lineno, line);
      }
    } else if (subject == "migrate") {
      std::string router, to_word, dest;
      if (!(words >> router >> to_word >> dest) || to_word != "to") {
        badLine(lineno, line);
      }
      event.kind = FaultKind::kMigrate;
      event.a = router;
      event.b = dest;
      std::string kv;
      while (words >> kv) {
        const auto eq = kv.find('=');
        if (eq == std::string::npos || kv.substr(0, eq) != "budget") {
          badLine(lineno, line);
        }
        event.budget_ms = parseNumber(kv, kv.substr(eq + 1), lineno, line);
      }
    } else if (subject == "srlg") {
      std::string group, action, extra;
      if (!(words >> group >> action) || (words >> extra)) badLine(lineno, line);
      event.a = group;
      if (action == "down") {
        event.kind = FaultKind::kSrlgDown;
      } else if (action == "up") {
        event.kind = FaultKind::kSrlgUp;
      } else {
        badLine(lineno, line);
      }
    } else {
      badLine(lineno, line);
    }
    schedule.events.push_back(std::move(event));
  }
  return schedule;
}

// ---------------------------------------------------------------------------
// Campaign generation

namespace {

/// Alternating up/down timeline for one entity: emits (time, failed)
/// transitions with the same horizon discipline as generateFailureTrace —
/// strictly advancing time, failures only inside the horizon, the final
/// repair allowed to cross it.
template <typename Emit>
void runTimeline(sim::Random& random, double duration_seconds,
                 double mttf_seconds, double mttr_seconds, Emit&& emit) {
  double t = 0;
  bool up = true;
  while (true) {
    const double dwell = random.exponential(up ? mttf_seconds : mttr_seconds);
    t += std::max(dwell, 1e-9);
    if (up && t >= duration_seconds) break;
    up = !up;
    emit(t, /*failed=*/!up);
    if (up && t >= duration_seconds) break;
  }
}

std::pair<std::string, std::string> splitLinkName(const std::string& name) {
  const auto dash = name.find('-');
  if (dash == std::string::npos) {
    throw std::runtime_error("campaign link name '" + name +
                             "' is not of the form A-B");
  }
  return {name.substr(0, dash), name.substr(dash + 1)};
}

}  // namespace

FaultSchedule generateFaultCampaign(const CampaignTargets& targets,
                                    double duration_seconds,
                                    const CampaignModel& model) {
  FaultSchedule schedule;
  if (duration_seconds <= 0) return schedule;
  // One forked stream per timeline, drawn in a fixed order: adding a
  // fault class never perturbs the draws of another.
  sim::Random master(model.link.seed);

  if (model.link.mttf_seconds > 0) {
    for (const auto& name : targets.links) {
      const auto [a, b] = splitLinkName(name);
      sim::Random stream = master.fork();
      runTimeline(stream, duration_seconds, model.link.mttf_seconds,
                  model.link.mttr_seconds, [&](double t, bool failed) {
                    FaultEvent event;
                    event.at_seconds = t;
                    event.kind =
                        failed ? FaultKind::kLinkDown : FaultKind::kLinkUp;
                    event.a = a;
                    event.b = b;
                    schedule.events.push_back(std::move(event));
                  });
    }
  }

  if (model.degrade.enabled) {
    for (const auto& name : targets.links) {
      const auto [a, b] = splitLinkName(name);
      sim::Random stream = master.fork();
      runTimeline(stream, duration_seconds, model.degrade.mttf_seconds,
                  model.degrade.mttr_seconds, [&](double t, bool failed) {
                    FaultEvent event;
                    event.at_seconds = t;
                    event.kind = failed ? FaultKind::kLinkDegrade
                                        : FaultKind::kLinkRestore;
                    event.a = a;
                    event.b = b;
                    if (failed) {
                      event.degrade.loss_rate = model.degrade_loss;
                      event.degrade.delay_seconds = model.degrade_delay_seconds;
                      event.degrade.bandwidth_bps = model.degrade_bandwidth_bps;
                    }
                    schedule.events.push_back(std::move(event));
                  });
    }
  }

  if (model.node.enabled) {
    for (const auto& name : targets.nodes) {
      sim::Random stream = master.fork();
      runTimeline(stream, duration_seconds, model.node.mttf_seconds,
                  model.node.mttr_seconds, [&](double t, bool failed) {
                    FaultEvent event;
                    event.at_seconds = t;
                    event.kind = failed ? FaultKind::kNodeCrash
                                        : FaultKind::kNodeRestart;
                    event.a = name;
                    schedule.events.push_back(std::move(event));
                  });
    }
  }

  if (model.proc.enabled) {
    for (const auto& name : targets.proc_nodes) {
      for (const ProcClass proc : targets.proc_classes) {
        sim::Random stream = master.fork();
        if (model.proc.mttr_seconds <= 0) {
          // Supervisor-recovered: kills form a renewal process; the
          // restart is the Supervisor's (backoff-delayed) job.
          double t = 0;
          while (true) {
            t += std::max(stream.exponential(model.proc.mttf_seconds), 1e-9);
            if (t >= duration_seconds) break;
            FaultEvent event;
            event.at_seconds = t;
            event.kind = FaultKind::kProcKill;
            event.a = name;
            event.proc = proc;
            schedule.events.push_back(std::move(event));
          }
        } else {
          runTimeline(stream, duration_seconds, model.proc.mttf_seconds,
                      model.proc.mttr_seconds, [&](double t, bool failed) {
                        FaultEvent event;
                        event.at_seconds = t;
                        event.kind = failed ? FaultKind::kProcKill
                                            : FaultKind::kProcRestart;
                        event.a = name;
                        event.proc = proc;
                        schedule.events.push_back(std::move(event));
                      });
        }
      }
    }
  }

  if (model.migrate.enabled) {
    // Appended after every pre-existing class so enabling migrations
    // never perturbs the draws (and thus the schedules) of campaigns
    // that existed before this class did.
    for (const auto& target : targets.migrations) {
      sim::Random stream = master.fork();
      // Renewal process alternating spare/home destinations; like the
      // supervised proc class, completion is the migrator's job.
      double t = 0;
      bool at_home = true;
      while (true) {
        t += std::max(stream.exponential(model.migrate.mttf_seconds), 1e-9);
        if (t >= duration_seconds) break;
        FaultEvent event;
        event.at_seconds = t;
        event.kind = FaultKind::kMigrate;
        event.a = target.router;
        event.b = at_home ? target.spare : target.home;
        event.budget_ms = model.migrate_budget_ms;
        schedule.events.push_back(std::move(event));
        at_home = !at_home;
      }
    }
  }

  std::stable_sort(schedule.events.begin(), schedule.events.end(),
                   [](const FaultEvent& x, const FaultEvent& y) {
                     return x.at_seconds < y.at_seconds;
                   });
  return schedule;
}

}  // namespace vini::fault
