// Chaos campaigns: seeded random fault storms with invariant audits.
//
// runChaosCampaign drives a ready-made World through a generated fault
// campaign (links flapping and degrading, nodes crashing, routing
// daemons killed and supervised back to life), waits for quiescence,
// and then audits the invariants that must hold in any correct run:
//
//   V120  the overlay re-converged within the recovery bound
//   V121  no forwarding loop between any pair of router taps
//   V122  channel stats and the obs metrics registry agree (packet
//         conservation between the data path and its observers)
//   V123  no timer owned by a dead routing process is still armed
//
// Everything — fault times, backoff jitter, protocol timers — draws
// from seeded streams, so a campaign is bit-reproducible: two runs with
// the same seed produce byte-identical event logs and reports.
#pragma once

#include <cstdint>
#include <string>

#include "check/diagnostic.h"
#include "fault/fault.h"
#include "fault/injector.h"
#include "fault/supervisor.h"
#include "migrate/manager.h"
#include "topo/worlds.h"

namespace vini::fault {

struct ChaosOptions {
  std::uint64_t seed = 1;
  double duration_seconds = 120.0;
  /// Per-class availability models; mttf/mttr are interpreted against
  /// duration_seconds, so defaults here are chaos-dense, not realistic.
  CampaignModel model;
  bool include_link_faults = true;
  bool include_degrades = true;
  bool include_node_crashes = true;
  bool include_proc_faults = true;
  SupervisorConfig supervisor;
  /// Live migrations during the storm.  Off by default: the world needs
  /// spare substrate nodes (topo::WorldOptions::spare_nodes) to host
  /// them; with no spares the class stays silent even when enabled.
  /// The migrate class is appended after every other fault class, so
  /// enabling it leaves existing seeded schedules byte-identical.
  bool include_migrations = false;
  migrate::MigrationPolicy migration;
  /// Extra settle time beyond the last fault before auditing; 0 derives
  /// a bound from the routers' dead interval and the supervisor backoff.
  double recovery_seconds = 0.0;
};

struct ChaosReport {
  /// Deterministic, line-per-event account of everything that happened:
  /// injected faults and supervised restarts, sorted by time.
  std::string event_log;
  check::Report invariants;
  bool converged = false;
  std::size_t fault_event_count = 0;
  std::uint64_t supervised_restarts = 0;
  /// Migration accounting (present only when include_migrations was
  /// set; format() omits the line otherwise so legacy reports stay
  /// byte-identical).
  bool migrations_enabled = false;
  std::size_t migrations_requested = 0;
  std::size_t migrations_completed = 0;
  std::size_t migrations_rolled_back = 0;
  /// MigrationManager::reportJson() — the CI artifact.
  std::string migration_json;

  bool passed() const { return converged && !invariants.hasErrors(); }
  /// Full human-readable report (also byte-stable across runs).
  std::string format() const;
};

/// Defaults for ChaosOptions::model tuned so a 120 s campaign exercises
/// every fault class a handful of times.
CampaignModel denseCampaignModel(std::uint64_t seed);

/// Run a seeded campaign against the world and audit the invariants.
/// The world must already be converged (or be freshly built; the
/// harness converges it first).
ChaosReport runChaosCampaign(topo::World& world, const ChaosOptions& options);

}  // namespace vini::fault
