// vini_srclint: determinism & concurrency-readiness analysis over the
// C++ source tree itself.
//
// PR 1 built the V0xx/V1xx machinery for linting *specs* before they
// touch the substrate; this pass turns the same Diagnostic discipline on
// the *code*, the way rcc lints router configurations before deployment.
// The motivation is the parallel sharded event engine (ROADMAP item 2),
// whose hard requirement is "same seed => byte-identical exports
// regardless of thread count".  Two classes of source construct silently
// break that guarantee long before any thread exists, and both are
// findable statically:
//
//  * nondeterminism hazards — unordered-container iteration order
//    leaking into output, pointer-keyed ordering, wall-clock or global
//    RNG reads in sim paths, mutable static state;
//  * unguarded shared state — members documented as cross-shard but
//    missing a thread-safety annotation.
//
// The analyzer is a tokenizer plus pattern rules (no libclang
// dependency): it lexes each file, classifies brace scopes
// (namespace / class / function / initializer), and runs per-rule
// scans.  Analysis is file-scoped; a .cc file may be paired with its
// sibling header so member declarations resolve (the one cross-file
// fact the rules need).  Findings carry stable V2xx codes:
//
//   V200  iteration over std::unordered_map/unordered_set whose body
//         emits output, schedules events, or mutates ordered state
//         (error); any other unordered iteration (warning)
//   V201  container keyed by raw pointer value (std::map/set/
//         unordered_map/unordered_set with a pointer key type) —
//         iteration order then depends on allocation addresses
//   V202  wall-clock read (std::chrono::{system,steady,high_resolution}
//         _clock, time(), clock(), gettimeofday, ...) — sim paths must
//         use sim::now(); the event-loop profiler's reads live in the
//         baseline allowlist
//   V203  global or unseeded randomness (rand(), srand(),
//         std::random_device, a function-local engine constructed
//         without a seed) — sim paths draw from the seeded per-entity
//         sim::Random streams
//   V204  function-local or namespace-scope mutable static state
//         (non-const static locals, namespace-scope mutable globals)
//   V205  shared_ptr::use_count()-dependent logic (a race once the
//         refcount is touched by more than one thread)
//   V206  volatile used as a synchronization primitive
//   V207  data member documented with the cross-shard marker but missing a
//         VINI_GUARDED_BY / VINI_PT_GUARDED_BY annotation
//         (src/core/thread_annotations.h)
//   V208  EventQueue::schedule/scheduleAfter called with a tag string
//         outside the documented vocabulary (README "Schedule tag
//         vocabulary") — profiler breakdowns and PROFILE_report.json
//         consumers key on known tags, so a typo'd tag silently vanishes
//         from every per-subsystem view
//
// Accepted findings live in a checked-in baseline
// (examples/specs/srclint.baseline): one entry per (code, file), each
// carrying a mandatory justification string.  The gate fails on any
// unbaselined error and on any stale baseline entry, so the baseline
// can only shrink unless a justified entry is added consciously.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "check/diagnostic.h"

namespace vini::check {

/// One source finding.  `path` uses forward slashes; when produced by
/// lintTree() it is relative to the scanned root ("src/sim/foo.cc").
struct SrcFinding {
  Severity severity = Severity::kError;
  std::string code;     ///< stable "V2xx"
  std::string path;
  int line = 0;         ///< 1-based
  std::string message;
};

/// "error V204 [src/app/ping.cc:7]: ..."
std::string formatFinding(const SrcFinding& finding);

/// Analyze one file's text.  `companion_header` (may be empty) is lexed
/// for member declarations only — unordered-container members declared
/// in a class's header count as unordered when the .cc iterates them.
std::vector<SrcFinding> lintSource(const std::string& path,
                                   const std::string& text,
                                   const std::string& companion_header = "");

/// Recursively lint every .h/.cc under `root`/<subdir> for each subdir,
/// visiting files in sorted order (deterministic output).  Each .cc is
/// automatically paired with a same-stem sibling .h when one exists.
std::vector<SrcFinding> lintTree(const std::string& root,
                                 const std::vector<std::string>& subdirs);

// -- Baseline ---------------------------------------------------------------

/// One accepted suppression: all findings of `code` in `path` are
/// suppressed.  The justification is mandatory.
struct BaselineEntry {
  std::string code;
  std::string path;
  std::string justification;
};

struct Baseline {
  std::vector<BaselineEntry> entries;
};

/// Parse baseline text ("Vxxx path -- justification" lines, # comments).
/// Throws std::runtime_error naming the offending line on a malformed
/// entry or a missing justification.
Baseline parseBaseline(const std::string& text);

/// Render findings as a baseline file body, one entry per (code, path),
/// sorted, with placeholder justifications to be filled in by a human.
std::string emitBaseline(const std::vector<SrcFinding>& findings);

struct BaselineResult {
  std::vector<SrcFinding> unbaselined;  ///< findings no entry covers
  std::vector<SrcFinding> suppressed;   ///< findings covered by an entry
  std::vector<BaselineEntry> stale;     ///< entries that covered nothing
};

BaselineResult applyBaseline(const std::vector<SrcFinding>& findings,
                             const Baseline& baseline);

/// Append findings to a Report with "path:line" locations, preserving
/// severity — bridges into the shared V-code formatting/gating.
void toReport(const std::vector<SrcFinding>& findings, Report& report);

/// Built-in fixtures: one positive and one negative snippet per V2xx
/// rule, run through lintSource().  Prints failures to `os`; returns
/// true when every fixture behaves.  Reachable as
/// `vini_srclint --self-test` so CI exercises the rules without the
/// repo as input.
bool srclintSelfTest(std::ostream& os);

}  // namespace vini::check
