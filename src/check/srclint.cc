#include "check/srclint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace vini::check {
namespace {

// ---------------------------------------------------------------------------
// Lexer.  Produces a flat token stream (identifiers, numbers, punctuation)
// with 1-based line numbers, plus a per-line map of comment text.  String
// and character literals are stripped (their contents never trigger rules),
// and preprocessor lines are skipped wholesale, so macro bodies and include
// paths are invisible to the rules.
// ---------------------------------------------------------------------------

struct Token {
  std::string text;
  int line = 0;
};

struct Lexed {
  std::vector<Token> tokens;
  std::map<int, std::string> comments;  // line -> concatenated comment text
};

bool isIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool isIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool isIdentToken(const std::string& t) {
  return !t.empty() && isIdentStart(t[0]);
}

Lexed lex(const std::string& text) {
  Lexed out;
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  bool at_line_start = true;  // only whitespace seen so far on this line
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '#' && at_line_start) {
      // Preprocessor directive: skip to end of line, honoring backslash
      // continuations.  Macro bodies are out of scope for the rules.
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          i += 2;
          ++line;
          continue;
        }
        if (text[i] == '\n') break;
        ++i;
      }
      continue;
    }
    at_line_start = false;
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const std::size_t start = i + 2;
      while (i < n && text[i] != '\n') ++i;
      out.comments[line] += text.substr(start, i - start);
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      std::size_t seg = i;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') {
          out.comments[line] += text.substr(seg, i - seg);
          ++line;
          seg = i + 1;
        }
        ++i;
      }
      if (i + 1 < n) {
        out.comments[line] += text.substr(seg, i - seg);
        i += 2;
      } else {
        i = n;
      }
      continue;
    }
    if (c == 'R' && i + 1 < n && text[i + 1] == '"') {
      // Raw string literal: find the matching )delim" and drop it.
      std::size_t p = i + 2;
      std::string delim;
      while (p < n && text[p] != '(' && text[p] != '\n') delim += text[p++];
      const std::string closer = ")" + delim + "\"";
      const std::size_t end = text.find(closer, p);
      const std::size_t stop = end == std::string::npos ? n : end + closer.size();
      for (std::size_t k = i; k < stop; ++k) {
        if (text[k] == '\n') ++line;
      }
      i = stop;
      continue;
    }
    if (c == '"') {
      ++i;
      while (i < n && text[i] != '"') {
        if (text[i] == '\\' && i + 1 < n) {
          if (text[i + 1] == '\n') ++line;
          i += 2;
          continue;
        }
        if (text[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      continue;
    }
    if (c == '\'') {
      ++i;
      while (i < n && text[i] != '\'' && text[i] != '\n') {
        if (text[i] == '\\' && i + 1 < n) {
          i += 2;
          continue;
        }
        ++i;
      }
      if (i < n && text[i] == '\'') ++i;
      continue;
    }
    if (isIdentStart(c)) {
      std::size_t j = i;
      while (j < n && isIdentChar(text[j])) ++j;
      out.tokens.push_back({text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i;
      while (j < n) {
        const char d = text[j];
        if (isIdentChar(d) || d == '.') {
          ++j;
        } else if (d == '\'' && j + 1 < n &&
                   std::isalnum(static_cast<unsigned char>(text[j + 1]))) {
          ++j;  // digit separator
        } else if ((d == '+' || d == '-') && j > i &&
                   (text[j - 1] == 'e' || text[j - 1] == 'E' ||
                    text[j - 1] == 'p' || text[j - 1] == 'P')) {
          ++j;  // exponent sign
        } else {
          break;
        }
      }
      out.tokens.push_back({text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Punctuation: longest match first.
    static const char* kThree[] = {"<<=", ">>=", "->*", "..."};
    static const char* kTwo[] = {"::", "->", "<<", ">>", "<=", ">=", "==",
                                 "!=", "&&", "||", "++", "--", "+=", "-=",
                                 "*=", "/=", "%=", "&=", "|=", "^=", ".*"};
    std::string tok;
    for (const char* p : kThree) {
      if (text.compare(i, 3, p) == 0) {
        tok = p;
        break;
      }
    }
    if (tok.empty()) {
      for (const char* p : kTwo) {
        if (text.compare(i, 2, p) == 0) {
          tok = p;
          break;
        }
      }
    }
    if (tok.empty()) tok = std::string(1, c);
    out.tokens.push_back({tok, line});
    i += tok.size();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scope classification.  Each token is tagged with the innermost brace
// scope containing it, classified from the statement head preceding the
// opening brace.  Heuristic but robust for this codebase's style; the
// self-test pins the cases the rules depend on.
// ---------------------------------------------------------------------------

enum class ScopeKind {
  kNamespace,  // file scope, namespace bodies, extern "C" blocks
  kClass,      // class/struct/union/enum bodies
  kFunction,   // function bodies and everything nested in them
  kInit,       // brace initializers at class/namespace scope
};

ScopeKind classifyBrace(const std::vector<Token>& toks, std::size_t stmt_start,
                        std::size_t brace, ScopeKind current) {
  bool has_namespace = false;
  bool has_classkey = false;
  bool has_extern = false;
  bool has_paren = false;
  for (std::size_t j = stmt_start; j < brace; ++j) {
    const std::string& t = toks[j].text;
    if (t == "namespace") has_namespace = true;
    else if (t == "class" || t == "struct" || t == "union" || t == "enum")
      has_classkey = true;
    else if (t == "extern") has_extern = true;
    else if (t == "(") has_paren = true;
  }
  const std::string prev = brace > stmt_start ? toks[brace - 1].text : "";
  if (has_namespace || has_extern) return ScopeKind::kNamespace;
  if (has_classkey && prev != ")" && prev != "=") return ScopeKind::kClass;
  if (current == ScopeKind::kFunction) return ScopeKind::kFunction;
  if (has_paren || prev == ")" || prev == "else" || prev == "do" ||
      prev == "try") {
    return ScopeKind::kFunction;
  }
  return ScopeKind::kInit;
}

std::vector<ScopeKind> classifyScopes(const std::vector<Token>& toks) {
  std::vector<ScopeKind> at(toks.size(), ScopeKind::kNamespace);
  std::vector<ScopeKind> stack{ScopeKind::kNamespace};
  std::size_t stmt_start = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    at[i] = stack.back();
    const std::string& t = toks[i].text;
    if (t == "{") {
      stack.push_back(classifyBrace(toks, stmt_start, i, stack.back()));
      stmt_start = i + 1;
    } else if (t == "}") {
      if (stack.size() > 1) stack.pop_back();
      stmt_start = i + 1;
    } else if (t == ";") {
      stmt_start = i + 1;
    }
  }
  return at;
}

// Skip a balanced <...> starting at toks[j] == "<"; returns the index just
// past the closing '>'.  A ">>" token closes two levels.  Bails (returning
// the stop index) on ';' or '{', which means the '<' was a comparison.
std::size_t skipAngles(const std::vector<Token>& toks, std::size_t j) {
  int depth = 0;
  for (; j < toks.size(); ++j) {
    const std::string& t = toks[j].text;
    if (t == "<") {
      ++depth;
    } else if (t == ">") {
      if (--depth <= 0) return j + 1;
    } else if (t == ">>") {
      depth -= 2;
      if (depth <= 0) return j + 1;
    } else if (t == ";" || t == "{") {
      return j;
    }
  }
  return j;
}

// Find the index of the matching ")" for toks[open] == "(".
std::size_t matchParen(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks[j].text == "(") ++depth;
    else if (toks[j].text == ")" && --depth == 0) return j;
  }
  return toks.size();
}

// Find the index of the matching "}" for toks[open] == "{".
std::size_t matchBrace(const std::vector<Token>& toks, std::size_t open) {
  int depth = 0;
  for (std::size_t j = open; j < toks.size(); ++j) {
    if (toks[j].text == "{") ++depth;
    else if (toks[j].text == "}" && --depth == 0) return j;
  }
  return toks.size();
}

void emit(std::vector<SrcFinding>& out, Severity severity, const char* code,
          const std::string& path, int line, std::string message) {
  out.push_back({severity, code, path, line, std::move(message)});
}

const std::set<std::string>& unorderedContainerNames() {
  static const std::set<std::string> kNames = {
      "unordered_map", "unordered_set", "unordered_multimap",
      "unordered_multiset"};
  return kNames;
}

const std::set<std::string>& orderedContainerNames() {
  static const std::set<std::string> kNames = {"map", "set", "multimap",
                                               "multiset"};
  return kNames;
}

// Names declared (or returned) with an unordered container type: after the
// container keyword's template args, the next identifier is taken as the
// variable / member / accessor name.  Lexing the companion header lets a
// .cc file's loops over members declared in the header resolve.
std::set<std::string> collectUnorderedNames(const Lexed& lx) {
  std::set<std::string> names;
  const std::vector<Token>& toks = lx.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (unorderedContainerNames().count(toks[i].text) == 0) continue;
    std::size_t j = i + 1;
    if (j < toks.size() && toks[j].text == "<") j = skipAngles(toks, j);
    while (j < toks.size() && (toks[j].text == "&" || toks[j].text == "*"))
      ++j;
    if (j < toks.size() && isIdentToken(toks[j].text)) names.insert(toks[j].text);
  }
  return names;
}

// V200: iteration over an unordered container.  Bodies that emit output,
// schedule events, or append to ordered state are errors (iteration order
// leaks into observable results); any other iteration is a warning.
void ruleV200(const std::string& path, const Lexed& lx, const Lexed& header,
              std::vector<SrcFinding>& out) {
  std::set<std::string> names = collectUnorderedNames(lx);
  const std::set<std::string> header_names = collectUnorderedNames(header);
  names.insert(header_names.begin(), header_names.end());
  if (names.empty()) return;

  static const std::set<std::string> kOrderSensitive = {
      "<<",       "push_back", "emplace_back", "append",  "schedule",
      "scheduleAfter", "record", "write",    "writeCsv", "instant",
      "duration", "printf",    "fprintf",      "puts"};

  const std::vector<Token>& toks = lx.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text != "for" || toks[i + 1].text != "(") continue;
    const std::size_t open = i + 1;
    const std::size_t close = matchParen(toks, open);
    if (close >= toks.size()) continue;
    // Range-for: the ':' at paren depth 1 splits declaration from range.
    std::size_t colon = 0;
    int depth = 0;
    for (std::size_t j = open; j < close; ++j) {
      if (toks[j].text == "(") ++depth;
      else if (toks[j].text == ")") --depth;
      else if (toks[j].text == ":" && depth == 1 && toks[j - 1].text != ":" &&
               (j + 1 >= toks.size() || toks[j + 1].text != ":")) {
        colon = j;
        break;
      }
    }
    std::string container;
    if (colon != 0) {
      for (std::size_t j = colon + 1; j < close; ++j) {
        if (names.count(toks[j].text)) {
          container = toks[j].text;
          break;
        }
      }
    } else {
      // Classic for: NAME.begin() / NAME.cbegin() inside the header.
      for (std::size_t j = open + 1; j + 2 < close; ++j) {
        if (names.count(toks[j].text) &&
            (toks[j + 1].text == "." || toks[j + 1].text == "->") &&
            (toks[j + 2].text == "begin" || toks[j + 2].text == "cbegin")) {
          container = toks[j].text;
          break;
        }
      }
    }
    if (container.empty()) continue;
    // Loop body: a brace block, or a single statement up to ';'.
    std::size_t body_begin = close + 1;
    std::size_t body_end = body_begin;
    if (body_begin < toks.size() && toks[body_begin].text == "{") {
      body_end = matchBrace(toks, body_begin);
    } else {
      while (body_end < toks.size() && toks[body_end].text != ";") ++body_end;
    }
    bool order_sensitive = false;
    for (std::size_t j = body_begin; j < body_end; ++j) {
      if (kOrderSensitive.count(toks[j].text)) {
        order_sensitive = true;
        break;
      }
    }
    if (order_sensitive) {
      emit(out, Severity::kError, "V200", path, toks[i].line,
           "iteration over unordered container '" + container +
               "' feeds output/scheduling/ordered state; iteration order is "
               "unspecified — sort keys first or use std::map");
    } else {
      emit(out, Severity::kWarning, "V200", path, toks[i].line,
           "iteration over unordered container '" + container +
               "'; verify the body is order-insensitive");
    }
  }
}

// V201: container keyed by raw pointer value — iteration order (and for
// ordered containers, comparison order) then depends on allocation
// addresses, which vary run to run.
void ruleV201(const std::string& path, const Lexed& lx,
              std::vector<SrcFinding>& out) {
  const std::vector<Token>& toks = lx.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (unorderedContainerNames().count(t) == 0 &&
        orderedContainerNames().count(t) == 0) {
      continue;
    }
    if (toks[i + 1].text != "<") continue;
    // Collect the first template argument's tokens.
    std::vector<std::string> first;
    int depth = 1;
    bool done = false;
    for (std::size_t j = i + 2; j < toks.size() && !done; ++j) {
      const std::string& u = toks[j].text;
      if (u == "<") {
        ++depth;
      } else if (u == ">") {
        if (--depth == 0) done = true;
      } else if (u == ">>") {
        depth -= 2;
        if (depth <= 0) done = true;
      } else if (u == "," && depth == 1) {
        done = true;
      } else if (u == ";" || u == "{") {
        first.clear();
        done = true;
      }
      if (!done) first.push_back(u);
    }
    if (!first.empty() && first.back() == "*") {
      emit(out, Severity::kError, "V201", path, toks[i].line,
           "container keyed by raw pointer value; ordering/iteration depends "
           "on allocation addresses — key by a stable id instead");
    }
  }
}

// V202: wall-clock reads.  Simulated time comes from sim::now(); the only
// sanctioned wall-clock consumer is the event-loop profiler, which lives
// in the baseline allowlist.
void ruleV202(const std::string& path, const Lexed& lx,
              std::vector<SrcFinding>& out) {
  static const std::set<std::string> kClockIdents = {
      "system_clock", "steady_clock", "high_resolution_clock", "gettimeofday",
      "clock_gettime", "timespec_get", "localtime", "gmtime", "ctime",
      "mktime"};
  const std::vector<Token>& toks = lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (kClockIdents.count(t)) {
      emit(out, Severity::kError, "V202", path, toks[i].line,
           "wall-clock read ('" + t +
               "'); sim paths must use sim::now() — profiler reads belong in "
               "the baseline allowlist");
      continue;
    }
    if ((t == "time" || t == "clock") && i + 1 < toks.size() &&
        toks[i + 1].text == "(") {
      const std::string prev = i > 0 ? toks[i - 1].text : "";
      if (prev != "." && prev != "->") {
        emit(out, Severity::kError, "V202", path, toks[i].line,
             "wall-clock read ('" + t + "(...)'); sim paths must use "
             "sim::now()");
      }
    }
  }
}

// V203: global or unseeded randomness.  Deterministic replay requires every
// draw to come from a seeded, per-entity sim::Random stream.
void ruleV203(const std::string& path, const Lexed& lx,
              const std::vector<ScopeKind>& scopes,
              std::vector<SrcFinding>& out) {
  static const std::set<std::string> kEngines = {
      "mt19937",       "mt19937_64",   "minstd_rand", "minstd_rand0",
      "default_random_engine", "ranlux24", "ranlux48", "ranlux24_base",
      "ranlux48_base", "knuth_b"};
  const std::vector<Token>& toks = lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if ((t == "rand" || t == "srand" || t == "random_shuffle") &&
        i + 1 < toks.size() && toks[i + 1].text == "(") {
      const std::string prev = i > 0 ? toks[i - 1].text : "";
      if (prev != "." && prev != "->") {
        emit(out, Severity::kError, "V203", path, toks[i].line,
             "global RNG ('" + t + "(...)'); draw from the seeded per-entity "
             "sim::Random stream instead");
      }
      continue;
    }
    if (t == "random_device") {
      emit(out, Severity::kError, "V203", path, toks[i].line,
           "std::random_device is nondeterministic by design; seed from the "
           "experiment's configured seed instead");
      continue;
    }
    if (kEngines.count(t) && scopes[i] == ScopeKind::kFunction &&
        i + 2 < toks.size() && isIdentToken(toks[i + 1].text)) {
      // A function-local engine declared without a seed argument:
      // `std::mt19937_64 rng;` or `std::mt19937_64 rng{};`.
      const std::string& after = toks[i + 2].text;
      const bool empty_brace = after == "{" && i + 3 < toks.size() &&
                               toks[i + 3].text == "}";
      if (after == ";" || empty_brace) {
        emit(out, Severity::kError, "V203", path, toks[i].line,
             "unseeded random engine '" + t + " " + toks[i + 1].text +
                 "'; construct it from the experiment's configured seed");
      }
    }
  }
}

// V204: mutable static state — non-const function-local statics, mutable
// static members, and namespace-scope mutable globals.  Such state is
// shared by every shard and survives across runs-in-process, breaking both
// determinism and thread-safety.
void ruleV204(const std::string& path, const Lexed& lx,
              const std::vector<ScopeKind>& scopes,
              std::vector<SrcFinding>& out) {
  const std::vector<Token>& toks = lx.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text != "static") continue;
    bool has_const = false;
    bool is_function = false;
    const std::size_t bound = std::min(toks.size(), i + 64);
    std::size_t j = i + 1;
    for (; j < bound; ++j) {
      const std::string& t = toks[j].text;
      if (t == "(") {
        is_function = true;
        break;
      }
      if (t == ";" || t == "=" || t == "{") break;
      if (t == "const" || t == "constexpr" || t == "constinit")
        has_const = true;
    }
    if (is_function || has_const || j >= bound) continue;
    emit(out, Severity::kError, "V204", path, toks[i].line,
         "mutable static state; hoist into an object owned by the World (or "
         "mark const)");
  }

  // Namespace-scope mutable globals without the `static` keyword:
  // statements at namespace scope of the form `Type name = init;`.
  static const std::set<std::string> kDeclExcluders = {
      "using",  "typedef",  "struct",    "class",     "enum",
      "namespace", "template", "extern", "static",    "friend",
      "operator", "const",   "constexpr", "constinit"};
  std::size_t stmt = 0;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const std::string& t = toks[i].text;
    if (t == "{" || t == "}") {
      stmt = i + 1;
      continue;
    }
    if (t != ";") continue;
    const std::size_t begin = stmt;
    stmt = i + 1;
    if (begin >= i || scopes[begin] != ScopeKind::kNamespace) continue;
    bool excluded = false;
    std::size_t eq = 0;
    for (std::size_t j = begin; j < i; ++j) {
      if (kDeclExcluders.count(toks[j].text)) {
        excluded = true;
        break;
      }
      if (toks[j].text == "=" && eq == 0) eq = j;
    }
    if (excluded || eq == 0) continue;
    int idents = 0;
    bool has_call = false;
    for (std::size_t j = begin; j < eq; ++j) {
      if (isIdentToken(toks[j].text)) ++idents;
      if (toks[j].text == "(") has_call = true;
    }
    if (idents >= 2 && !has_call) {
      emit(out, Severity::kError, "V204", path, toks[begin].line,
           "namespace-scope mutable global; hoist into an object owned by "
           "the World (or mark const)");
    }
  }
}

// V205: branching on shared_ptr::use_count().  The count is advisory the
// moment a second thread exists; logic keyed on it is a latent race.
void ruleV205(const std::string& path, const Lexed& lx,
              std::vector<SrcFinding>& out) {
  const std::vector<Token>& toks = lx.tokens;
  for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
    if (toks[i].text == "use_count" && toks[i + 1].text == "(") {
      emit(out, Severity::kError, "V205", path, toks[i].line,
           "logic depends on shared_ptr::use_count(), which is unreliable "
           "under concurrency; track ownership explicitly");
    }
  }
}

// V206: volatile used as a synchronization primitive.  volatile orders
// nothing between threads; std::atomic is the tool.
void ruleV206(const std::string& path, const Lexed& lx,
              std::vector<SrcFinding>& out) {
  for (const Token& t : lx.tokens) {
    if (t.text == "volatile") {
      emit(out, Severity::kError, "V206", path, t.line,
           "volatile is not a synchronization primitive; use std::atomic or "
           "a guarded member");
    }
  }
}

// V207: a member documented with the cross-shard marker comment must carry
// a VINI_GUARDED_BY / VINI_PT_GUARDED_BY annotation
// (src/core/thread_annotations.h), so clang's -Wthread-safety can police
// access once the sharded engine lands.
void ruleV207(const std::string& path, const Lexed& lx,
              std::vector<SrcFinding>& out) {
  const std::string kTag = "cross-shard:";
  const std::vector<Token>& toks = lx.tokens;
  for (const auto& [line, text] : lx.comments) {
    if (text.find(kTag) == std::string::npos) continue;
    // The declaration the comment documents starts at the first token on
    // this line or after it; the annotation must appear before the ';'.
    std::size_t first = toks.size();
    for (std::size_t i = 0; i < toks.size(); ++i) {
      if (toks[i].line >= line) {
        first = i;
        break;
      }
    }
    bool annotated = false;
    const std::size_t bound = std::min(toks.size(), first + 200);
    for (std::size_t i = first; i < bound; ++i) {
      if (toks[i].text == "VINI_GUARDED_BY" ||
          toks[i].text == "VINI_PT_GUARDED_BY") {
        annotated = true;
        break;
      }
      if (toks[i].text == ";") break;
    }
    if (!annotated) {
      emit(out, Severity::kError, "V207", path, line,
           "member documented as cross-shard but missing VINI_GUARDED_BY / "
           "VINI_PT_GUARDED_BY (core/thread_annotations.h)");
    }
  }
}

// V208: unknown event-schedule tag.  EventQueue::schedule/scheduleAfter
// accept a static tag string that attributes the event to a subsystem for
// the event-loop profiler and the parallelism profiler; downstream
// tooling (vini_profile, PROFILE_report.json consumers, dashboards) keys
// on the documented vocabulary, so a typo'd or ad-hoc tag silently
// vanishes from every per-subsystem breakdown.  The vocabulary lives in
// the README ("Schedule tag vocabulary"); "test" and "bench" are
// reserved for tests, tools, and benches.
//
// The lexer strips string literals, so this rule scans the *raw* source:
// it finds each schedule/scheduleAfter call and checks the first string
// literal among its arguments (the tag always precedes the callback, so
// the scan stops at the first '{' — a lambda body — or the call's
// closing parenthesis).  Untagged calls are fine: the overloads without
// a tag are the untraced fast path.
void ruleV208(const std::string& path, const std::string& text,
              std::vector<SrcFinding>& out) {
  static const std::set<std::string> kKnownTags = {
      "phys.link",  "tcpip.host", "tcpip.tcp",     "cpu.scheduler",
      "fault.supervisor",         "xorp.ospf",     "xorp.bgp",
      "xorp.rip",   "click.shaper",                "app.iperf",
      "app.ping",   "app.traffic", "test",         "bench"};
  const std::size_t n = text.size();
  std::size_t i = 0;
  int line = 1;
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      i = i + 1 < n ? i + 2 : n;
      continue;
    }
    if (c == '"' || c == '\'') {
      const char quote = c;
      ++i;
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) ++i;
        else if (text[i] == '\n') ++line;
        ++i;
      }
      if (i < n) ++i;
      continue;
    }
    if (!isIdentStart(c)) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < n && isIdentChar(text[j])) ++j;
    const std::string ident = text.substr(i, j - i);
    i = j;
    if (ident != "schedule" && ident != "scheduleAfter") continue;
    std::size_t k = j;
    while (k < n && (text[k] == ' ' || text[k] == '\t')) ++k;
    if (k >= n || text[k] != '(') continue;
    // Look ahead through the argument list (the outer loop re-scans this
    // text afterwards, so `line` stays consistent).
    int depth = 0;
    int cur = line;
    std::size_t p = k;
    while (p < n) {
      const char d = text[p];
      if (d == '\n') {
        ++cur;
        ++p;
        continue;
      }
      if (d == '/' && p + 1 < n && text[p + 1] == '/') {
        while (p < n && text[p] != '\n') ++p;
        continue;
      }
      if (d == '/' && p + 1 < n && text[p + 1] == '*') {
        p += 2;
        while (p + 1 < n && !(text[p] == '*' && text[p + 1] == '/')) {
          if (text[p] == '\n') ++cur;
          ++p;
        }
        p = p + 1 < n ? p + 2 : n;
        continue;
      }
      if (d == '(') {
        ++depth;
        ++p;
        continue;
      }
      if (d == ')') {
        if (--depth == 0) break;
        ++p;
        continue;
      }
      if (d == '{') break;  // callback body: the tag would precede it
      if (d == '\'') {
        ++p;
        while (p < n && text[p] != '\'' && text[p] != '\n') {
          if (text[p] == '\\' && p + 1 < n) ++p;
          ++p;
        }
        if (p < n && text[p] == '\'') ++p;
        continue;
      }
      if (d == '"') {
        std::string tag;
        std::size_t e = p + 1;
        while (e < n && text[e] != '"') {
          if (text[e] == '\\' && e + 1 < n) ++e;
          tag += text[e++];
        }
        if (kKnownTags.count(tag) == 0) {
          emit(out, Severity::kError, "V208", path, cur,
               "unknown schedule tag \"" + tag +
                   "\" — not in the documented vocabulary (README "
                   "\"Schedule tag vocabulary\"); profiler breakdowns "
                   "and PROFILE_report.json consumers key on known tags");
        }
        break;
      }
      ++p;
    }
  }
}

std::string trimCopy(const std::string& s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

}  // namespace

std::vector<SrcFinding> lintSource(const std::string& path,
                                   const std::string& text,
                                   const std::string& companion_header) {
  const Lexed lx = lex(text);
  const Lexed header = companion_header.empty() ? Lexed{} : lex(companion_header);
  const std::vector<ScopeKind> scopes = classifyScopes(lx.tokens);

  std::vector<SrcFinding> out;
  ruleV200(path, lx, header, out);
  ruleV201(path, lx, out);
  ruleV202(path, lx, out);
  ruleV203(path, lx, scopes, out);
  ruleV204(path, lx, scopes, out);
  ruleV205(path, lx, out);
  ruleV206(path, lx, out);
  ruleV207(path, lx, out);
  ruleV208(path, text, out);

  std::sort(out.begin(), out.end(),
            [](const SrcFinding& a, const SrcFinding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.code < b.code;
            });
  return out;
}

std::vector<SrcFinding> lintTree(const std::string& root,
                                 const std::vector<std::string>& subdirs) {
  namespace fs = std::filesystem;
  std::vector<fs::path> files;
  for (const std::string& sub : subdirs) {
    const fs::path dir = fs::path(root) / sub;
    if (!fs::exists(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      const std::string ext = entry.path().extension().string();
      if (ext == ".h" || ext == ".cc") files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end(),
            [](const fs::path& a, const fs::path& b) {
              return a.generic_string() < b.generic_string();
            });

  auto slurp = [](const fs::path& p) {
    std::ifstream in(p);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  };

  std::vector<SrcFinding> out;
  for (const fs::path& file : files) {
    const std::string text = slurp(file);
    std::string companion;
    if (file.extension() == ".cc") {
      fs::path sibling = file;
      sibling.replace_extension(".h");
      if (fs::exists(sibling)) companion = slurp(sibling);
    }
    const std::string rel = file.lexically_relative(root).generic_string();
    std::vector<SrcFinding> found = lintSource(rel, text, companion);
    out.insert(out.end(), found.begin(), found.end());
  }
  return out;
}

Baseline parseBaseline(const std::string& text) {
  Baseline baseline;
  std::istringstream in(text);
  std::string raw;
  int lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    const std::string line = trimCopy(raw);
    if (line.empty() || line[0] == '#') continue;
    const std::size_t sp = line.find_first_of(" \t");
    if (sp == std::string::npos) {
      throw std::runtime_error("srclint baseline line " +
                               std::to_string(lineno) +
                               ": expected 'Vxxx path -- justification'");
    }
    BaselineEntry entry;
    entry.code = line.substr(0, sp);
    if (entry.code.size() < 2 || entry.code[0] != 'V' ||
        entry.code.find_first_not_of("0123456789", 1) != std::string::npos) {
      throw std::runtime_error("srclint baseline line " +
                               std::to_string(lineno) + ": bad check code '" +
                               entry.code + "'");
    }
    const std::string rest = trimCopy(line.substr(sp + 1));
    const std::size_t sep = rest.find(" -- ");
    if (sep == std::string::npos) {
      throw std::runtime_error(
          "srclint baseline line " + std::to_string(lineno) +
          ": missing ' -- justification' after the path");
    }
    entry.path = trimCopy(rest.substr(0, sep));
    entry.justification = trimCopy(rest.substr(sep + 4));
    if (entry.path.empty() || entry.justification.empty()) {
      throw std::runtime_error("srclint baseline line " +
                               std::to_string(lineno) +
                               ": empty path or justification");
    }
    baseline.entries.push_back(std::move(entry));
  }
  return baseline;
}

std::string emitBaseline(const std::vector<SrcFinding>& findings) {
  std::set<std::pair<std::string, std::string>> keys;
  for (const SrcFinding& f : findings) keys.insert({f.code, f.path});
  std::ostringstream os;
  os << "# vini_srclint baseline: accepted V2xx suppressions.\n"
     << "# Format: <code> <path> -- <justification>\n"
     << "# Every entry must carry a justification; stale entries fail the "
        "gate.\n";
  for (const auto& [code, path] : keys) {
    os << code << " " << path << " -- TODO: justify this suppression\n";
  }
  return os.str();
}

BaselineResult applyBaseline(const std::vector<SrcFinding>& findings,
                             const Baseline& baseline) {
  BaselineResult result;
  std::map<std::pair<std::string, std::string>, std::size_t> index;
  for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
    index[{baseline.entries[i].code, baseline.entries[i].path}] = i;
  }
  std::set<std::size_t> used;
  for (const SrcFinding& f : findings) {
    const auto it = index.find({f.code, f.path});
    if (it == index.end()) {
      result.unbaselined.push_back(f);
    } else {
      result.suppressed.push_back(f);
      used.insert(it->second);
    }
  }
  for (std::size_t i = 0; i < baseline.entries.size(); ++i) {
    if (used.count(i) == 0) result.stale.push_back(baseline.entries[i]);
  }
  return result;
}

bool srclintSelfTest(std::ostream& os) {
  struct Fixture {
    const char* name;
    const char* code;      // the V2xx code under test
    bool expect;           // should the code fire on this source?
    Severity severity;     // expected severity when it fires
    const char* source;
  };
  const Fixture fixtures[] = {
      {"v200-unordered-iteration-into-output", "V200", true, Severity::kError,
       "void f(std::ostream& os) {\n"
       "  std::unordered_map<int, int> m;\n"
       "  for (const auto& kv : m) { os << kv.first; }\n"
       "}\n"},
      {"v200-unordered-iteration-order-insensitive", "V200", true,
       Severity::kWarning,
       "int f() {\n"
       "  std::unordered_set<int> s;\n"
       "  int sum = 0;\n"
       "  for (int v : s) { sum += v; }\n"
       "  return sum;\n"
       "}\n"},
      {"v200-member-declared-in-companion-header", "V200", true,
       Severity::kError,
       "void Stack::dump(std::ostream& os) {\n"
       "  for (const auto& kv : connections_) { os << kv.first; }\n"
       "}\n"},
      {"v200-ordered-map-iteration-is-fine", "V200", false, Severity::kError,
       "void f(std::ostream& os) {\n"
       "  std::map<int, int> m;\n"
       "  for (const auto& kv : m) { os << kv.first; }\n"
       "}\n"},
      {"v201-pointer-keyed-set", "V201", true, Severity::kError,
       "struct R;\n"
       "std::set<R*> visited;\n"},
      {"v201-value-keyed-map-is-fine", "V201", false, Severity::kError,
       "std::map<std::string, int> counts;\n"},
      {"v202-steady-clock-read", "V202", true, Severity::kError,
       "void f() { auto t = std::chrono::steady_clock::now(); }\n"},
      {"v202-bare-time-call", "V202", true, Severity::kError,
       "long f() { return std::time(nullptr); }\n"},
      {"v202-sim-clock-is-fine", "V202", false, Severity::kError,
       "void f(Context& ctx) { auto t = ctx.clock->now(); double time = 1; }\n"},
      {"v203-rand-call", "V203", true, Severity::kError,
       "int f() { return std::rand(); }\n"},
      {"v203-unseeded-local-engine", "V203", true, Severity::kError,
       "int f() { std::mt19937_64 rng; return (int)rng(); }\n"},
      {"v203-class-member-engine-is-fine", "V203", false, Severity::kError,
       "class Random {\n"
       " public:\n"
       "  explicit Random(uint64_t seed) : engine_(seed) {}\n"
       " private:\n"
       "  std::mt19937_64 engine_;\n"
       "};\n"},
      {"v204-mutable-static-local", "V204", true, Severity::kError,
       "int next() {\n"
       "  static int counter = 0;\n"
       "  return ++counter;\n"
       "}\n"},
      {"v204-namespace-scope-mutable-global", "V204", true, Severity::kError,
       "namespace app {\n"
       "Widget* g_current = nullptr;\n"
       "}\n"},
      {"v204-const-static-is-fine", "V204", false, Severity::kError,
       "const char* name() {\n"
       "  static const std::string kName = \"x\";\n"
       "  return kName.c_str();\n"
       "}\n"
       "constexpr int kTableSize = 64;\n"},
      {"v204-static-function-decl-is-fine", "V204", false, Severity::kError,
       "class Log {\n"
       " public:\n"
       "  static Log& instance();\n"
       "};\n"},
      {"v205-use-count-branch", "V205", true, Severity::kError,
       "void f(std::shared_ptr<int> p) { if (p.use_count() == 1) { p.reset(); } }\n"},
      {"v205-plain-reset-is-fine", "V205", false, Severity::kError,
       "void f(std::shared_ptr<int> p) { p.reset(); }\n"},
      {"v206-volatile-flag", "V206", true, Severity::kError,
       "struct S { volatile bool done_; };\n"},
      {"v206-atomic-is-fine", "V206", false, Severity::kError,
       "struct S { std::atomic<bool> done_; };\n"},
      {"v207-marker-without-annotation", "V207", true, Severity::kError,
       "class T {\n"
       "  // cross-shard: read by samplers on other shards\n"
       "  int count_ = 0;\n"
       "};\n"},
      {"v207-marker-with-annotation-is-fine", "V207", false, Severity::kError,
       "class T {\n"
       "  // cross-shard: read by samplers on other shards\n"
       "  int count_ VINI_GUARDED_BY(shard_) = 0;\n"
       "};\n"},
      {"v208-unknown-schedule-tag", "V208", true, Severity::kError,
       "void f(sim::EventQueue& q) {\n"
       "  q.scheduleAfter(5, \"phys.lnik\", [] {});\n"
       "}\n"},
      {"v208-known-tag-is-fine", "V208", false, Severity::kError,
       "void f(sim::EventQueue& q, sim::NodeTag node) {\n"
       "  q.scheduleAfter(5, \"phys.link\", node, [] {});\n"
       "  q.schedule(10,\n"
       "             \"tcpip.host\",  // tag on its own line\n"
       "             [] {});\n"
       "}\n"},
      {"v208-untagged-call-is-fine", "V208", false, Severity::kError,
       "void f(sim::EventQueue& q) {\n"
       "  q.schedule(10, [] { const char* s = \"not.a.tag\"; use(s); });\n"
       "}\n"},
  };

  const std::string companion =
      "class Stack {\n"
      "  std::unordered_map<int, Conn> connections_;\n"
      "};\n";

  bool ok = true;
  for (const Fixture& fx : fixtures) {
    const std::string header =
        std::string(fx.name).find("companion") != std::string::npos
            ? companion
            : std::string();
    const std::vector<SrcFinding> findings =
        lintSource("fixture.cc", fx.source, header);
    const SrcFinding* hit = nullptr;
    for (const SrcFinding& f : findings) {
      if (f.code == fx.code) {
        hit = &f;
        break;
      }
    }
    if ((hit != nullptr) != fx.expect) {
      os << "srclint self-test FAIL: " << fx.name << ": expected "
         << (fx.expect ? "a " : "no ") << fx.code << " finding\n";
      for (const SrcFinding& f : findings) os << "  got: " << formatFinding(f) << "\n";
      ok = false;
    } else if (hit != nullptr && hit->severity != fx.severity) {
      os << "srclint self-test FAIL: " << fx.name << ": expected severity "
         << severityName(fx.severity) << ", got "
         << severityName(hit->severity) << "\n";
      ok = false;
    }
  }

  // Baseline round trip: emitted entries parse back and suppress the
  // findings they were emitted for.
  std::vector<SrcFinding> sample;
  sample.push_back({Severity::kError, "V204", "src/x.cc", 7, "m"});
  sample.push_back({Severity::kError, "V202", "src/y.cc", 3, "m"});
  std::string text = emitBaseline(sample);
  std::size_t pos;
  while ((pos = text.find("TODO: justify this suppression")) !=
         std::string::npos) {
    text.replace(pos, 30, "self-test justification");
  }
  try {
    const Baseline parsed = parseBaseline(text);
    const BaselineResult applied = applyBaseline(sample, parsed);
    if (!applied.unbaselined.empty() || !applied.stale.empty() ||
        applied.suppressed.size() != 2) {
      os << "srclint self-test FAIL: baseline round trip did not suppress "
            "all sample findings\n";
      ok = false;
    }
  } catch (const std::exception& e) {
    os << "srclint self-test FAIL: baseline round trip threw: " << e.what()
       << "\n";
    ok = false;
  }
  // A malformed entry (no justification) must be rejected.
  bool threw = false;
  try {
    parseBaseline("V204 src/x.cc\n");
  } catch (const std::exception&) {
    threw = true;
  }
  if (!threw) {
    os << "srclint self-test FAIL: baseline without justification was "
          "accepted\n";
    ok = false;
  }
  return ok;
}

std::string formatFinding(const SrcFinding& finding) {
  Diagnostic d;
  d.severity = finding.severity;
  d.code = finding.code;
  d.location = finding.path + ":" + std::to_string(finding.line);
  d.message = finding.message;
  return formatDiagnostic(d);
}

void toReport(const std::vector<SrcFinding>& findings, Report& report) {
  for (const SrcFinding& f : findings) {
    report.add(f.severity, f.code, f.path + ":" + std::to_string(f.line),
               f.message);
  }
}

}  // namespace vini::check
