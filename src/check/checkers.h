// Static checkers over everything users author (the vini-verify linter).
//
// The paper's promise is *controlled* experimentation: a misconfigured
// topology, an overcommitted CPU reservation, or a malformed failure
// trace silently breaks that promise long before any VINI mechanism is
// exercised.  These checkers validate every spec up front — the same
// admission-control discipline a real testbed controller applies —
// and report findings through check::Report with stable codes.
//
// Check-code catalogue (V0xx = static checks; see audit.h for V1xx):
//
//   Topology specs (checkTopologySpec)
//     V001  duplicate virtual node name
//     V002  link endpoint references an unknown node
//     V003  self-link (both endpoints the same node)
//     V004  duplicate link (same endpoints, either direction)
//     V005  topology is not connected
//     V006  link with zero IGP cost (breaks shortest-path routing)
//     V007  unsatisfiable physical binding (two virtual nodes bound to
//           one physical node, or a binding to an unknown physical node)
//
//   Experiment scripts (checkExperimentScript)
//     V010  action references an unknown node/link
//     V011  action scheduled before the experiment start
//     V012  action scheduled past the horizon
//     V013  fail/restore ordering violation (restore before fail, or
//           double-fail without an intervening restore)
//     V014  verb targets a layer the experiment does not have
//           (virtual verbs with no IIAS overlay, phys verbs with no
//           substrate)
//
//   Failure traces (checkLinkTrace)
//     V020  non-monotonic timestamps
//     V021  event references an unknown link
//     V022  down event for an already-down link (error) / up event for
//           an already-up link (warning)
//
//   Fault schedules (checkFaultSchedule)
//     V110  event references an unknown node, link, or SRLG (or an SRLG
//           definition names an unknown link)
//     V111  invalid degrade parameters (loss outside [0, 1], nonpositive
//           bandwidth, negative delay, or no parameters at all)
//     V112  lifecycle overlap (crash of an already-crashed node, restart
//           of a node that never crashed, down of an already-down link
//           or SRLG, restart of a never-killed process; re-kill of an
//           already-killed process is a warning — the supervisor may
//           have restarted it off-trace)
//     V113  non-monotonic timestamps
//
//   Node / link / scheduler configs
//     V030  CPU reservations admitted on one node sum past the machine
//     V031  invalid link parameter (nonpositive bandwidth, zero queue,
//           loss rate outside [0, 1])
//     V032  negative link propagation delay
//     V033  nonpositive scheduler parameter (timeslice, speed factor,
//           contention resample period)
//
//   Parsing (reported by vini_lint when a file fails to parse)
//     V098  rcc-style router-config fault (asymmetric adjacency or
//           cost mismatch; warning — the topology still parses)
//     V099  file failed to parse at all
#pragma once

#include <string>
#include <vector>

#include "check/diagnostic.h"
#include "core/embedder.h"
#include "core/slice.h"
#include "cpu/scheduler.h"
#include "fault/fault.h"
#include "phys/link.h"
#include "phys/network.h"
#include "topo/experiment_spec.h"
#include "topo/failure_trace.h"

namespace vini::check {

/// Validate a virtual topology spec (V001-V007).  When `net` is given,
/// physical bindings are also resolved against it.
void checkTopologySpec(const core::TopologySpec& spec, Report& report,
                       const phys::PhysNetwork* net = nullptr);

/// What the script will run against; controls reference resolution.
struct ScriptContext {
  /// Node/link names actions may reference (virtual and — for the
  /// paper's one-to-one mirrors — physical).  Null disables V010.
  const core::TopologySpec* topology = nullptr;
  /// Experiment has an IIAS overlay (fail-link / restore-link targets).
  bool has_iias = true;
  /// Experiment has a physical substrate (fail-phys-link targets).
  bool has_phys = true;
  /// Simulation time the script is admitted at.
  double start_seconds = 0.0;
  /// Experiment horizon; <= 0 disables V012.
  double horizon_seconds = 0.0;
};

/// Validate an experiment script (V010-V014).
void checkExperimentScript(const std::vector<topo::ExperimentAction>& actions,
                           const ScriptContext& context, Report& report);

/// Validate a failure trace (V020-V022).  `topology` resolves link
/// references; null disables V021.
void checkLinkTrace(const std::vector<topo::LinkEvent>& events, Report& report,
                    const core::TopologySpec* topology = nullptr);

/// Validate a fault schedule (V110-V113).  `topology` resolves node and
/// link references; null disables that part of V110 (SRLG references
/// are still resolved against the schedule's own definitions).
void checkFaultSchedule(const fault::FaultSchedule& schedule, Report& report,
                        const core::TopologySpec* topology = nullptr);

/// Validate one link configuration (V031, V032).
void checkLinkConfig(const phys::LinkConfig& config, const std::string& where,
                     Report& report);

/// Validate one node scheduler configuration (V033).
void checkSchedulerConfig(const cpu::SchedulerConfig& config,
                          const std::string& where, Report& report);

/// One slice's demand on the substrate: its topology plus resources.
struct SliceDemand {
  const core::TopologySpec* topology = nullptr;
  core::ResourceSpec resources;
};

/// Admission pre-check: sum CPU reservations per physical node across
/// all demands (V030).  `max_per_node` mirrors
/// core::ViniConfig::max_node_reservation.
void checkCpuReservations(const std::vector<SliceDemand>& demands,
                          Report& report, double max_per_node = 1.0);

/// Audit a live physical network's link and scheduler configs
/// (V031-V033) — catches programmatically built misconfigurations.
void checkPhysNetworkConfigs(const phys::PhysNetwork& net, Report& report);

}  // namespace vini::check
