#include "check/diagnostic.h"

#include <sstream>

namespace vini::check {

const char* severityName(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

std::string formatDiagnostic(const Diagnostic& d) {
  std::ostringstream os;
  os << severityName(d.severity) << " " << d.code;
  if (!d.location.empty()) os << " [" << d.location << "]";
  os << ": " << d.message;
  return os.str();
}

void Report::add(Severity severity, std::string code, std::string location,
                 std::string message) {
  diagnostics_.push_back(Diagnostic{severity, std::move(code),
                                    std::move(location), std::move(message)});
}

bool Report::hasErrors() const {
  for (const auto& d : diagnostics_) {
    if (d.severity == Severity::kError) return true;
  }
  return false;
}

std::size_t Report::countErrors() const {
  std::size_t n = 0;
  for (const auto& d : diagnostics_) {
    if (d.severity == Severity::kError) ++n;
  }
  return n;
}

bool Report::hasCode(const std::string& code) const {
  for (const auto& d : diagnostics_) {
    if (d.code == code) return true;
  }
  return false;
}

std::string Report::format() const {
  std::ostringstream os;
  for (const auto& d : diagnostics_) os << formatDiagnostic(d) << "\n";
  return os.str();
}

}  // namespace vini::check
