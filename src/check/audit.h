// Runtime invariant audits.
//
// Deterministic replication is only as good as the invariants the engine
// actually maintains; audits make them mechanical.  When the build is
// configured with -DVINI_AUDIT=ON (the default for Debug builds), hot
// paths in sim/event_queue, phys/link, and cpu/scheduler verify their
// core invariants and report violations through the same Diagnostic
// machinery the spec linter uses:
//
//   V100  event executed with a timestamp earlier than now()
//         (simulation time must be monotonic)
//   V101  cancel() of an event that already fired or was already
//         cancelled (warning; callers should track their handles)
//   V102  channel byte accounting out of sync with the queued packets
//   V103  CPU reservations on one node exceed the whole machine
//
// The default sink prints the diagnostic to stderr and aborts on
// kError severity (a violated engine invariant means the run is
// garbage); tests install a collecting sink to seed violations and
// observe the findings instead.
//
// Call sites compile to nothing when VINI_AUDIT is off — wrap them as
//   VINI_AUDIT_CHECK(cond, makeDiagnostic(...));
#pragma once

#include <functional>

#include "check/diagnostic.h"

namespace vini::check {

using AuditSink = std::function<void(const Diagnostic&)>;

/// Install a sink for audit findings; pass nullptr to restore the
/// default (stderr + abort on error).  Returns the previous sink.
AuditSink setAuditSink(AuditSink sink);

/// Report one audit finding to the current sink.
void auditReport(Diagnostic d);

/// RAII helper for tests: collects findings for its lifetime.
class ScopedAuditCollector {
 public:
  ScopedAuditCollector();
  ~ScopedAuditCollector();

  ScopedAuditCollector(const ScopedAuditCollector&) = delete;
  ScopedAuditCollector& operator=(const ScopedAuditCollector&) = delete;

  const Report& report() const { return report_; }

 private:
  Report report_;
  AuditSink previous_;
};

}  // namespace vini::check

#if defined(VINI_AUDIT)
#define VINI_AUDIT_ENABLED 1
// `diag` is only evaluated when the condition fails.
#define VINI_AUDIT_CHECK(cond, diag)            \
  do {                                          \
    if (!(cond)) ::vini::check::auditReport(diag); \
  } while (0)
#else
#define VINI_AUDIT_ENABLED 0
#define VINI_AUDIT_CHECK(cond, diag) \
  do {                               \
  } while (0)
#endif
