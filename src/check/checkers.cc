#include "check/checkers.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace vini::check {

namespace {

/// Canonical undirected link key.
std::pair<std::string, std::string> linkKey(const std::string& a,
                                            const std::string& b) {
  return a < b ? std::make_pair(a, b) : std::make_pair(b, a);
}

std::string describeLink(const std::string& a, const std::string& b) {
  return a + "-" + b;
}

/// Node and link name sets of a topology, for reference resolution.
struct TopologyIndex {
  std::set<std::string> nodes;
  std::set<std::pair<std::string, std::string>> links;

  explicit TopologyIndex(const core::TopologySpec& spec) {
    for (const auto& node : spec.nodes) nodes.insert(node.name);
    for (const auto& link : spec.links) links.insert(linkKey(link.a, link.b));
  }

  bool hasLink(const std::string& a, const std::string& b) const {
    return links.count(linkKey(a, b)) != 0;
  }
};

}  // namespace

void checkTopologySpec(const core::TopologySpec& spec, Report& report,
                       const phys::PhysNetwork* net) {
  const std::string topo = "topology '" + spec.name + "'";

  // V001: duplicate node names (later checks use the first occurrence).
  std::set<std::string> names;
  for (const auto& node : spec.nodes) {
    if (!names.insert(node.name).second) {
      report.error("V001", topo + " node " + node.name,
                   "duplicate virtual node name '" + node.name + "'");
    }
  }

  // V007: unsatisfiable physical bindings.  A slice gets at most one
  // virtual node per physical node (core::Slice::addNode enforces this
  // at admission), and an explicit binding must name a real node.
  std::map<std::string, std::string> phys_users;  // phys -> first vnode
  for (const auto& node : spec.nodes) {
    if (node.phys_name.empty()) continue;
    auto [it, inserted] = phys_users.emplace(node.phys_name, node.name);
    if (!inserted && it->second != node.name) {
      report.error("V007", topo + " node " + node.name,
                   "virtual nodes '" + it->second + "' and '" + node.name +
                       "' are both bound to physical node '" + node.phys_name +
                       "'");
    }
    if (net != nullptr && !net->hasNode(node.phys_name)) {
      report.error("V007", topo + " node " + node.name,
                   "binding references unknown physical node '" +
                       node.phys_name + "'");
    }
  }

  // Per-link checks.
  std::set<std::pair<std::string, std::string>> seen_links;
  for (const auto& link : spec.links) {
    const std::string where = topo + " link " + describeLink(link.a, link.b);
    // V002: unknown endpoints.
    for (const std::string& end : {link.a, link.b}) {
      if (names.count(end) == 0) {
        report.error("V002", where,
                     "link endpoint '" + end + "' is not a declared node");
      }
    }
    // V003: self-links.
    if (link.a == link.b) {
      report.error("V003", where, "link connects node '" + link.a +
                                      "' to itself");
      continue;  // a self-link is not a duplicate of anything else
    }
    // V004: duplicate links (either direction).
    if (!seen_links.insert(linkKey(link.a, link.b)).second) {
      report.error("V004", where,
                   "duplicate link between '" + link.a + "' and '" + link.b +
                       "'");
    }
    // V006: zero IGP cost breaks shortest-path semantics.
    if (link.igp_cost == 0) {
      report.error("V006", where, "link has zero IGP cost");
    }
  }

  // V005: connectivity (over well-formed links only).  A partitioned
  // virtual topology means part of the experiment can never converge.
  if (names.size() > 1) {
    std::map<std::string, std::vector<std::string>> adjacency;
    for (const auto& link : spec.links) {
      if (link.a == link.b) continue;
      if (names.count(link.a) == 0 || names.count(link.b) == 0) continue;
      adjacency[link.a].push_back(link.b);
      adjacency[link.b].push_back(link.a);
    }
    std::set<std::string> reached;
    std::vector<std::string> frontier = {*names.begin()};
    reached.insert(*names.begin());
    while (!frontier.empty()) {
      const std::string at = std::move(frontier.back());
      frontier.pop_back();
      for (const auto& next : adjacency[at]) {
        if (reached.insert(next).second) frontier.push_back(next);
      }
    }
    if (reached.size() < names.size()) {
      report.error("V005", topo,
                   "topology is not connected: only " +
                       std::to_string(reached.size()) + " of " +
                       std::to_string(names.size()) +
                       " nodes reachable from '" + *names.begin() + "'");
    }
  }
}

void checkExperimentScript(const std::vector<topo::ExperimentAction>& actions,
                           const ScriptContext& context, Report& report) {
  // Actions execute in time order regardless of file order; ordering
  // checks (V013) follow execution order, ties broken by file order.
  std::vector<std::size_t> order(actions.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t x, std::size_t y) {
                     return actions[x].at_seconds < actions[y].at_seconds;
                   });

  std::unique_ptr<TopologyIndex> index;
  if (context.topology != nullptr) {
    index = std::make_unique<TopologyIndex>(*context.topology);
  }

  // Per-layer link fail state, keyed by canonical endpoint pair.
  std::set<std::pair<std::string, std::string>> failed_virtual;
  std::set<std::pair<std::string, std::string>> failed_phys;

  for (std::size_t position = 0; position < order.size(); ++position) {
    const topo::ExperimentAction& action = actions[order[position]];
    std::ostringstream where_os;
    where_os << "script action " << (order[position] + 1) << " ('"
             << action.verb << "' at " << action.at_seconds << "s)";
    const std::string where = where_os.str();

    // V011 / V012: the schedulable window.
    if (action.at_seconds < context.start_seconds) {
      report.error("V011", where,
                   "action is scheduled before the experiment start (" +
                       std::to_string(context.start_seconds) + "s)");
    }
    if (context.horizon_seconds > 0 &&
        action.at_seconds > context.horizon_seconds) {
      report.error("V012", where,
                   "action is scheduled past the horizon (" +
                       std::to_string(context.horizon_seconds) + "s)");
    }

    if (action.verb == "mark") continue;

    const bool virtual_verb =
        action.verb == "fail-link" || action.verb == "restore-link";
    const bool fails = action.verb == "fail-link" ||
                       action.verb == "fail-phys-link";

    // V014: the verb's layer must exist in this experiment.
    if (virtual_verb && !context.has_iias) {
      report.error("V014", where,
                   "virtual-link verb but the experiment has no IIAS overlay");
    }
    if (!virtual_verb && !context.has_phys) {
      report.error("V014", where,
                   "physical-link verb but the experiment has no substrate");
    }

    if (action.args.size() != 2) continue;  // parser enforces; be safe
    const std::string& a = action.args[0];
    const std::string& b = action.args[1];

    // V010: the named link must exist.
    if (index != nullptr && !index->hasLink(a, b)) {
      const bool unknown_node =
          index->nodes.count(a) == 0 || index->nodes.count(b) == 0;
      report.error("V010", where,
                   unknown_node
                       ? "action references unknown node in '" +
                             describeLink(a, b) + "'"
                       : "no link between '" + a + "' and '" + b + "'");
      continue;  // state tracking for a nonexistent link is noise
    }

    // V013: fail/restore pairing per layer.
    auto& failed = virtual_verb ? failed_virtual : failed_phys;
    const auto key = linkKey(a, b);
    if (fails) {
      if (!failed.insert(key).second) {
        report.error("V013", where,
                     "link " + describeLink(a, b) +
                         " is failed twice without an intervening restore");
      }
    } else {
      if (failed.erase(key) == 0) {
        report.error("V013", where,
                     "restore of link " + describeLink(a, b) +
                         " which was never failed");
      }
    }
  }
}

void checkLinkTrace(const std::vector<topo::LinkEvent>& events, Report& report,
                    const core::TopologySpec* topology) {
  std::unique_ptr<TopologyIndex> index;
  if (topology != nullptr) index = std::make_unique<TopologyIndex>(*topology);

  double last_time = 0.0;
  bool first = true;
  // Links start up; the trace format encodes transitions only.
  std::set<std::pair<std::string, std::string>> down;

  for (std::size_t i = 0; i < events.size(); ++i) {
    const topo::LinkEvent& event = events[i];
    std::ostringstream where_os;
    where_os << "trace event " << (i + 1) << " (t=" << event.at_seconds << " "
             << describeLink(event.a, event.b) << " "
             << (event.up ? "up" : "down") << ")";
    const std::string where = where_os.str();

    // V020: replayable traces must be time-sorted.
    if (!first && event.at_seconds < last_time) {
      report.error("V020", where,
                   "timestamp moves backwards (previous event at " +
                       std::to_string(last_time) + "s)");
    }
    first = false;
    last_time = std::max(last_time, event.at_seconds);

    // V021: the link must exist.
    if (index != nullptr && !index->hasLink(event.a, event.b)) {
      report.error("V021", where,
                   "trace references unknown link " +
                       describeLink(event.a, event.b));
      continue;
    }

    // V022: state transitions must alternate.
    const auto key = linkKey(event.a, event.b);
    if (!event.up) {
      if (!down.insert(key).second) {
        report.error("V022", where,
                     "link " + describeLink(event.a, event.b) +
                         " goes down while already down");
      }
    } else {
      if (down.erase(key) == 0) {
        report.warning("V022", where,
                       "link " + describeLink(event.a, event.b) +
                           " comes up while already up");
      }
    }
  }
}

void checkFaultSchedule(const fault::FaultSchedule& schedule, Report& report,
                        const core::TopologySpec* topology) {
  std::unique_ptr<TopologyIndex> index;
  if (topology != nullptr) index = std::make_unique<TopologyIndex>(*topology);

  // V110: SRLG definitions must name real links.
  for (const auto& [group, members] : schedule.srlgs) {
    for (const auto& [a, b] : members) {
      if (index != nullptr && !index->hasLink(a, b)) {
        report.error("V110", "srlg " + group,
                     "group member " + describeLink(a, b) +
                         " is not a link in the topology");
      }
    }
  }

  double last_time = 0.0;
  bool first = true;
  // Per-class lifecycle state.  Everything starts healthy.
  std::set<std::pair<std::string, std::string>> links_down;
  std::set<std::pair<std::string, std::string>> links_degraded;
  std::set<std::string> nodes_crashed;
  std::set<std::string> srlgs_down;
  std::set<std::pair<std::string, int>> procs_killed;

  for (std::size_t i = 0; i < schedule.events.size(); ++i) {
    const fault::FaultEvent& event = schedule.events[i];
    std::ostringstream where_os;
    where_os << "fault event " << (i + 1) << " (t=" << event.at_seconds << " "
             << fault::faultKindName(event.kind);
    switch (event.kind) {
      case fault::FaultKind::kLinkDown:
      case fault::FaultKind::kLinkUp:
      case fault::FaultKind::kLinkDegrade:
      case fault::FaultKind::kLinkRestore:
        where_os << " " << describeLink(event.a, event.b);
        break;
      case fault::FaultKind::kProcKill:
      case fault::FaultKind::kProcRestart:
        where_os << " " << event.a << "/" << fault::procClassName(event.proc);
        break;
      case fault::FaultKind::kMigrate:
        where_os << " " << event.a << " to " << event.b;
        break;
      default:
        where_os << " " << event.a;
        break;
    }
    where_os << ")";
    const std::string where = where_os.str();

    // V113: replayable schedules must be time-sorted.
    if (!first && event.at_seconds < last_time) {
      report.error("V113", where,
                   "timestamp moves backwards (previous event at " +
                       std::to_string(last_time) + "s)");
    }
    first = false;
    last_time = std::max(last_time, event.at_seconds);

    switch (event.kind) {
      case fault::FaultKind::kLinkDown:
      case fault::FaultKind::kLinkUp:
      case fault::FaultKind::kLinkDegrade:
      case fault::FaultKind::kLinkRestore: {
        // V110: the link must exist.
        if (index != nullptr && !index->hasLink(event.a, event.b)) {
          report.error("V110", where,
                       "event references unknown link " +
                           describeLink(event.a, event.b));
          continue;
        }
        const auto key = linkKey(event.a, event.b);
        if (event.kind == fault::FaultKind::kLinkDown) {
          // V112: down/up must alternate (mirrors V022 for plain traces).
          if (!links_down.insert(key).second) {
            report.error("V112", where,
                         "link goes down while already down");
          }
        } else if (event.kind == fault::FaultKind::kLinkUp) {
          if (links_down.erase(key) == 0) {
            report.warning("V112", where, "link comes up while already up");
          }
        } else if (event.kind == fault::FaultKind::kLinkDegrade) {
          // V111: degrade parameters must be meaningful.
          const fault::DegradeSpec& d = event.degrade;
          if (!d.loss_rate && !d.delay_seconds && !d.bandwidth_bps) {
            report.error("V111", where,
                         "degrade sets no parameters (nothing to apply)");
          }
          if (d.loss_rate && (*d.loss_rate < 0.0 || *d.loss_rate > 1.0 ||
                              std::isnan(*d.loss_rate))) {
            report.error("V111", where,
                         "loss rate " + std::to_string(*d.loss_rate) +
                             " outside [0, 1]");
          }
          if (d.bandwidth_bps && !(*d.bandwidth_bps > 0.0)) {
            report.error("V111", where,
                         "nonpositive bandwidth " +
                             std::to_string(*d.bandwidth_bps) + " b/s");
          }
          if (d.delay_seconds && *d.delay_seconds < 0.0) {
            report.error("V111", where,
                         "negative delay " +
                             std::to_string(*d.delay_seconds) + " s");
          }
          if (!links_degraded.insert(key).second) {
            report.warning("V112", where,
                           "link degraded while already degraded "
                           "(previous quality is replaced)");
          }
        } else {  // kLinkRestore
          if (links_degraded.erase(key) == 0) {
            report.warning("V112", where,
                           "restore of a link that was never degraded");
          }
        }
        break;
      }
      case fault::FaultKind::kNodeCrash:
      case fault::FaultKind::kNodeRestart: {
        if (index != nullptr && index->nodes.count(event.a) == 0) {
          report.error("V110", where,
                       "event references unknown node " + event.a);
          continue;
        }
        if (event.kind == fault::FaultKind::kNodeCrash) {
          if (!nodes_crashed.insert(event.a).second) {
            report.error("V112", where,
                         "node crashes while already crashed");
          }
        } else if (nodes_crashed.erase(event.a) == 0) {
          report.error("V112", where,
                       "restart of a node that never crashed");
        }
        break;
      }
      case fault::FaultKind::kProcKill:
      case fault::FaultKind::kProcRestart: {
        if (index != nullptr && index->nodes.count(event.a) == 0) {
          report.error("V110", where,
                       "event references unknown node " + event.a);
          continue;
        }
        const auto key =
            std::make_pair(event.a, static_cast<int>(event.proc));
        if (event.kind == fault::FaultKind::kProcKill) {
          // A supervisor may restart the process off-trace between two
          // kills, so a re-kill is only suspicious, not wrong.
          if (!procs_killed.insert(key).second) {
            report.warning("V112", where,
                           "process killed while already killed "
                           "(valid only under a supervisor)");
          }
        } else if (procs_killed.erase(key) == 0) {
          report.error("V112", where,
                       "restart of a process that was never killed");
        }
        break;
      }
      case fault::FaultKind::kMigrate: {
        // V110: the migrated router must be a topology node.  The
        // destination is a *substrate* node (often a spare outside the
        // virtual topology), so only an obvious self-migration is
        // checkable statically.
        if (index != nullptr && index->nodes.count(event.a) == 0) {
          report.error("V110", where,
                       "event migrates unknown router " + event.a);
          continue;
        }
        if (event.b.empty()) {
          report.error("V110", where, "migration has no destination node");
        } else if (event.b == event.a) {
          report.error("V112", where,
                       "router migrates to its own substrate node");
        }
        // V111: a budget, when given, must be a positive duration.
        if (event.budget_ms &&
            (!(*event.budget_ms > 0.0) || std::isnan(*event.budget_ms))) {
          report.error("V111", where,
                       "nonpositive downtime budget " +
                           std::to_string(*event.budget_ms) + " ms");
        }
        break;
      }
      case fault::FaultKind::kSrlgDown:
      case fault::FaultKind::kSrlgUp: {
        if (schedule.srlgs.count(event.a) == 0) {
          report.error("V110", where,
                       "event references undefined SRLG " + event.a);
          continue;
        }
        if (event.kind == fault::FaultKind::kSrlgDown) {
          if (!srlgs_down.insert(event.a).second) {
            report.error("V112", where,
                         "SRLG goes down while already down");
          }
        } else if (srlgs_down.erase(event.a) == 0) {
          report.warning("V112", where, "SRLG comes up while already up");
        }
        break;
      }
    }
  }
}

void checkLinkConfig(const phys::LinkConfig& config, const std::string& where,
                     Report& report) {
  // V031: parameters that make the transmission model meaningless.
  if (!(config.bandwidth_bps > 0.0)) {
    report.error("V031", where,
                 "nonpositive bandwidth " + std::to_string(config.bandwidth_bps) +
                     " b/s");
  }
  if (config.queue_bytes == 0) {
    report.error("V031", where, "zero-byte output queue drops every packet");
  }
  if (config.loss_rate < 0.0 || config.loss_rate > 1.0 ||
      std::isnan(config.loss_rate)) {
    report.error("V031", where,
                 "loss rate " + std::to_string(config.loss_rate) +
                     " outside [0, 1]");
  }
  // V032: time cannot run backwards on the wire.
  if (config.propagation < 0) {
    report.error("V032", where,
                 "negative propagation delay " +
                     std::to_string(config.propagation) + " ns");
  }
}

void checkSchedulerConfig(const cpu::SchedulerConfig& config,
                          const std::string& where, Report& report) {
  // V033: parameters the scheduling model divides or ticks by.
  if (config.timeslice <= 0) {
    report.error("V033", where,
                 "nonpositive timeslice " + std::to_string(config.timeslice) +
                     " ns");
  }
  if (!(config.speed_factor > 0.0)) {
    report.error("V033", where,
                 "nonpositive speed factor " +
                     std::to_string(config.speed_factor));
  }
  if (config.contention_mean > 0.0 && config.contention_resample <= 0) {
    report.error("V033", where,
                 "contended node needs a positive contention resample period");
  }
}

void checkCpuReservations(const std::vector<SliceDemand>& demands,
                          Report& report, double max_per_node) {
  // Sum each physical node's admitted reservation across every demand.
  // Virtual nodes without an explicit binding are placed by the
  // embedder, so only explicit bindings can be pre-checked.
  std::map<std::string, double> reserved;
  std::map<std::string, std::vector<std::string>> holders;
  for (const auto& demand : demands) {
    if (demand.topology == nullptr) continue;
    if (demand.resources.cpu_reservation <= 0.0) continue;
    for (const auto& node : demand.topology->nodes) {
      if (node.phys_name.empty()) continue;
      reserved[node.phys_name] += demand.resources.cpu_reservation;
      holders[node.phys_name].push_back(demand.topology->name);
    }
  }
  for (const auto& [phys, total] : reserved) {
    if (total > max_per_node + 1e-9) {
      std::ostringstream os;
      os << "CPU reservations sum to " << total << " (limit " << max_per_node
         << ") across slices:";
      for (const auto& slice : holders[phys]) os << " " << slice;
      report.error("V030", "physical node " + phys, os.str());
    }
  }
}

void checkPhysNetworkConfigs(const phys::PhysNetwork& net, Report& report) {
  for (const auto& link : net.links()) {
    checkLinkConfig(link->config(), "physical link " + link->name(), report);
  }
  for (const auto& node : net.nodes()) {
    checkSchedulerConfig(node->scheduler().config(),
                         "physical node " + node->name(), report);
  }
}

}  // namespace vini::check
