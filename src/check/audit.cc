#include "check/audit.h"

#include <cstdlib>
#include <iostream>
#include <utility>

namespace vini::check {

namespace {

void defaultSink(const Diagnostic& d) {
  std::cerr << "[vini-audit] " << formatDiagnostic(d) << std::endl;
  if (d.severity == Severity::kError) std::abort();
}

AuditSink& currentSink() {
  static AuditSink sink;  // empty = default
  return sink;
}

}  // namespace

AuditSink setAuditSink(AuditSink sink) {
  AuditSink previous = std::move(currentSink());
  currentSink() = std::move(sink);
  return previous;
}

void auditReport(Diagnostic d) {
  if (currentSink()) {
    currentSink()(d);
  } else {
    defaultSink(d);
  }
}

ScopedAuditCollector::ScopedAuditCollector() {
  previous_ = setAuditSink([this](const Diagnostic& d) {
    report_.add(d.severity, d.code, d.location, d.message);
  });
}

ScopedAuditCollector::~ScopedAuditCollector() { setAuditSink(std::move(previous_)); }

}  // namespace vini::check
