// Structured diagnostics for static and runtime checking.
//
// Every problem the vini-verify layer can detect — a malformed topology
// spec, an experiment action past the horizon, a runtime invariant
// violation caught by a VINI_AUDIT assertion — is reported as a
// Diagnostic with a *stable* check code (V001, V020, ...).  Stable codes
// let tests pin exact findings, let CI gate on error counts, and give
// the README catalogue something durable to document.
//
// Code ranges:
//   V0xx  static checks over authored specs (topologies, scripts,
//         traces, node/link/scheduler configs)
//   V1xx  runtime invariant audits (compiled in under VINI_AUDIT)
//
// This header is dependency-free on purpose: the lowest layers of the
// substrate (sim, phys, cpu) report audit findings through it, so it
// must not pull in any of them.
#pragma once

#include <string>
#include <vector>

namespace vini::check {

enum class Severity {
  kWarning,  ///< suspicious but admissible; does not fail the gate
  kError,    ///< the spec/run is invalid; lint exits nonzero
};

const char* severityName(Severity severity);

struct Diagnostic {
  Severity severity = Severity::kError;
  /// Stable check code, e.g. "V003".  Never renumbered once shipped.
  std::string code;
  /// Where: "topology 'iias' link Denver-Denver", "script line 4",
  /// "trace event 12", "node Chicago", ...
  std::string location;
  /// What and why, in one sentence.
  std::string message;
};

/// "error V003 [topology 'iias' link Denver-Denver]: ..."
std::string formatDiagnostic(const Diagnostic& d);

/// An accumulating list of findings, shared by all checkers.
class Report {
 public:
  void add(Severity severity, std::string code, std::string location,
           std::string message);
  void error(std::string code, std::string location, std::string message) {
    add(Severity::kError, std::move(code), std::move(location), std::move(message));
  }
  void warning(std::string code, std::string location, std::string message) {
    add(Severity::kWarning, std::move(code), std::move(location), std::move(message));
  }

  const std::vector<Diagnostic>& diagnostics() const { return diagnostics_; }
  bool empty() const { return diagnostics_.empty(); }
  std::size_t size() const { return diagnostics_.size(); }

  bool hasErrors() const;
  std::size_t countErrors() const;

  /// True if any diagnostic carries the given check code.
  bool hasCode(const std::string& code) const;

  /// One formatted diagnostic per line.
  std::string format() const;

 private:
  std::vector<Diagnostic> diagnostics_;
};

}  // namespace vini::check
