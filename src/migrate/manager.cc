#include "migrate/manager.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "obs/obs.h"

namespace vini::migrate {

namespace {

/// Fixed-width ns-precision timestamp (same shape as the chaos log).
std::string formatTime(sim::Time t) {
  const auto secs = t / sim::kSecond;
  const auto frac = t % sim::kSecond;
  std::ostringstream os;
  os << secs << ".";
  std::string f = std::to_string(frac);
  os << std::string(9 - f.size(), '0') << f;
  return os.str();
}

/// Milliseconds with fixed 3-digit precision, integer arithmetic only.
std::string formatMs(double ms) {
  const auto micros = static_cast<long long>(ms * 1000.0 + 0.5);
  std::ostringstream os;
  os << micros / 1000 << ".";
  std::string f = std::to_string(micros % 1000);
  os << std::string(3 - f.size(), '0') << f;
  return os.str();
}

}  // namespace

MigrationManager::MigrationManager(sim::EventQueue& queue,
                                   phys::PhysNetwork& net, core::Vini& vini,
                                   overlay::IiasNetwork& iias,
                                   MigrationPolicy policy)
    : queue_(queue),
      net_(net),
      vini_(vini),
      iias_(iias),
      policy_(policy),
      random_(policy.seed) {}

MigrationManager::~MigrationManager() = default;

void MigrationManager::attachIngress(overlay::OpenVpnServer* server,
                                     std::vector<overlay::OpenVpnClient*> clients) {
  vpn_server_ = server;
  vpn_clients_ = std::move(clients);
}

void MigrationManager::logLine(const std::string& text) {
  log_.push_back(LogEntry{queue_.now(), text});
}

sim::Duration MigrationManager::backoffDelay(int attempt) {
  double delay = static_cast<double>(policy_.initial_backoff);
  for (int i = 1; i < attempt; ++i) delay *= policy_.multiplier;
  delay = std::min(delay, static_cast<double>(policy_.max_backoff));
  if (policy_.jitter > 0) {
    delay *= 1.0 + policy_.jitter * (2.0 * random_.uniform01() - 1.0);
  }
  return static_cast<sim::Duration>(std::max(delay, 1.0));
}

void MigrationManager::requestMigration(const std::string& router,
                                        const std::string& dest,
                                        std::optional<double> budget_ms) {
  overlay::IiasRouter* r = iias_.router(router);
  if (!r) throw std::runtime_error("migrate: unknown router " + router);
  if (!net_.nodeByName(dest)) {
    throw std::runtime_error("migrate: unknown destination node " + dest);
  }
  if (in_flight_.count(router) != 0) {
    logLine("migrate " + router + " to " + dest + " skipped (already migrating)");
    return;
  }
  const std::string from = r->vnode().physNode().name();
  if (from == dest) {
    logLine("migrate " + router + " to " + dest + " skipped (already there)");
    return;
  }

  MigrationRecord record;
  record.router = router;
  record.from = from;
  record.to = dest;
  record.budget_ms = budget_ms.value_or(policy_.default_budget_ms);
  record.t_request = queue_.now();
  const std::size_t index = records_.size();
  records_.push_back(record);

  auto active = std::make_unique<Active>();
  Active& a = *active;
  a.record_index = index;
  a.router = router;
  a.dest = dest;
  a.from_addr = r->vnode().physNode().address();
  in_flight_[router] = std::move(active);

  logLine("migrate " + router + " " + from + "->" + dest + " start budget=" +
          formatMs(record.budget_ms) + "ms");
  VINI_OBS_TIMELINE_INSTANT("migrate/" + router, "prepare", queue_.now());
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    ctx->metrics.counter("migrate", router, "requests").inc();
  }

  // Pre-copy: the warm state transfer ahead of the freeze.  Modeled as
  // a delay proportional to the state being shipped, capped by the
  // phase deadline.
  const RouterCheckpoint warm = captureCheckpoint(*r);
  const std::size_t items = warm.ospf.lsdb.size() + warm.rip.routes.size() +
                            warm.bgp_origins.size() + warm.fib.size();
  sim::Duration precopy = 10 * sim::kMillisecond +
                          static_cast<sim::Duration>(items) * sim::kMillisecond;
  precopy = std::min(precopy, policy_.precopy_deadline);
  a.phase = Phase::kPrecopy;
  a.timer = std::make_unique<sim::OneShotTimer>(queue_, [this, &a] { step(a); });
  a.timer->armAfter(precopy);
}

void MigrationManager::step(Active& a) {
  switch (a.phase) {
    case Phase::kPrecopy:
      freezeAndSwitch(a);
      break;
    case Phase::kRetry:
      attemptSwitchover(a);
      break;
    case Phase::kVerify:
      verify(a);
      break;
  }
}

void MigrationManager::freezeAndSwitch(Active& a) {
  overlay::IiasRouter* r = iias_.router(a.router);
  MigrationRecord& record = records_[a.record_index];
  record.t_freeze = queue_.now();
  frozen_.insert(a.router);
  logLine("migrate " + a.router + " freeze");
  VINI_OBS_TIMELINE_INSTANT("migrate/" + a.router, "freeze", queue_.now());

  // An external supervisor's daemon handles go stale the moment the
  // router is rebuilt elsewhere: make it forget them now.
  if (daemon_forget_) {
    for (const char* cls : {"ospf", "rip", "bgp"}) {
      daemon_forget_(a.router + "/" + std::string(cls));
    }
  }

  // Final checkpoint, captured BEFORE stop (stop models a crash and
  // clears the protocol state), then shipped through the wire format so
  // the grammar is exercised on the production path.
  RouterCheckpoint cp = captureCheckpoint(*r);
  a.carries_ingress = vpn_server_ != nullptr && vpn_server_->attachedRouter() == r;
  if (a.carries_ingress) {
    cp.has_leases = true;
    cp.leases = vpn_server_->exportLeases();
    cp.lease_next_host = vpn_server_->nextHost();
  }
  a.wire = emitCheckpoint(cp);
  r->stop();

  a.attempts = 0;
  attemptSwitchover(a);
}

void MigrationManager::attemptSwitchover(Active& a) {
  MigrationRecord& record = records_[a.record_index];
  ++a.attempts;
  record.attempts = a.attempts;

  const bool healthy = !node_probe_ || node_probe_(a.dest);
  if (healthy) {
    core::VirtualNode* vnode = iias_.slice().nodeByName(a.router);
    phys::PhysNode* dest = net_.nodeByName(a.dest);
    bool rehomed = false;
    try {
      vini_.rehomeNode(*vnode, *dest);
      rehomed = true;
      a.retired.push_back(iias_.rehomeRouter(a.router, a.from_addr));
      overlay::IiasRouter* fresh = iias_.router(a.router);
      const RouterCheckpoint cp = parseCheckpoint(a.wire);
      restoreCheckpoint(*fresh, cp);
      if (a.carries_ingress) {
        vpn_server_->attachTo(*fresh);
        vpn_server_->restoreLeases(cp.leases, cp.lease_next_host);
        for (overlay::OpenVpnClient* client : vpn_clients_) {
          client->rehome(*vpn_server_);
        }
      }
      fresh->start();
      resume(a, /*rolled_back=*/false);
      return;
    } catch (const std::exception& e) {
      // Admission control (or a corrupt checkpoint) refused the move.
      // Undo any partial re-home, then fall through to retry/rollback.
      logLine("migrate " + a.router + " attempt " +
              std::to_string(a.attempts) + " failed: " + e.what());
      if (rehomed && a.retired.empty()) {
        // Node moved but the router swap never happened: move it back.
        phys::PhysNode* home = net_.nodeByName(record.from);
        if (home) vini_.rehomeNode(*vnode, *home);
      }
    }
  } else {
    logLine("migrate " + a.router + " attempt " + std::to_string(a.attempts) +
            " failed: destination " + a.dest + " down");
  }

  // Retry with capped exponential backoff + seeded jitter — unless the
  // next attempt could not land inside the downtime budget, in which
  // case roll back NOW so the budget holds on this path too.
  const sim::Duration elapsed = queue_.now() - record.t_freeze;
  const sim::Duration budget =
      static_cast<sim::Duration>(record.budget_ms * 1e6);
  if (a.attempts >= policy_.max_switchover_attempts) {
    rollback(a, "attempts exhausted");
    return;
  }
  const sim::Duration delay = backoffDelay(a.attempts);
  if (elapsed + delay >= budget) {
    rollback(a, "downtime budget would be breached");
    return;
  }
  a.phase = Phase::kRetry;
  a.timer->armAfter(delay);
}

void MigrationManager::rollback(Active& a, const std::string& why) {
  MigrationRecord& record = records_[a.record_index];
  record.failure = why;
  logLine("migrate " + a.router + " rollback (" + why + ")");
  VINI_OBS_TIMELINE_INSTANT("migrate/" + a.router, "rollback", queue_.now());

  // The source router object is still installed and attached — it was
  // only stopped.  Warm-restart it from the same checkpoint; the
  // original leases were never disturbed, but run the restore anyway so
  // rollback exercises the identical path as switchover.
  overlay::IiasRouter* source = iias_.router(a.router);
  const RouterCheckpoint cp = parseCheckpoint(a.wire);
  restoreCheckpoint(*source, cp);
  if (a.carries_ingress) {
    vpn_server_->restoreLeases(cp.leases, cp.lease_next_host);
    for (overlay::OpenVpnClient* client : vpn_clients_) {
      client->rehome(*vpn_server_);
    }
  }
  source->start();
  resume(a, /*rolled_back=*/true);
}

void MigrationManager::resume(Active& a, bool rolled_back) {
  MigrationRecord& record = records_[a.record_index];
  record.t_resume = queue_.now();
  record.rolled_back = rolled_back;
  record.downtime_ms =
      static_cast<double>(record.t_resume - record.t_freeze) / 1e6;
  frozen_.erase(a.router);
  logLine("migrate " + a.router + (rolled_back ? " resumed on " + record.from +
                                                     " (rolled back)"
                                               : " resumed on " + record.to) +
          " downtime=" + formatMs(record.downtime_ms) + "ms attempts=" +
          std::to_string(record.attempts));
  const std::string track = "migrate/" + a.router;
  VINI_OBS_TIMELINE_DURATION(track, "switchover", record.t_freeze,
                             record.t_resume - record.t_freeze);
  VINI_OBS_TIMELINE_INSTANT(track, rolled_back ? "rollback-resume" : "resume",
                            queue_.now());
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    ctx->metrics.counter("migrate", a.router,
                         rolled_back ? "rollbacks" : "switchovers").inc();
    ctx->metrics.gauge("migrate", a.router, "downtime_ms")
        .add(record.downtime_ms);
  }

  // V131, checked live: the overlay must be loop-free the moment
  // forwarding resumes, not merely after re-convergence.
  auditNoForwardingLoop("resume of " + a.router);

  a.phase = Phase::kVerify;
  a.timer->armAfter(policy_.verify_delay);
}

void MigrationManager::verify(Active& a) {
  const std::string router = a.router;
  MigrationRecord& record = records_[a.record_index];
  record.t_verified = queue_.now();
  record.completed = !record.rolled_back;

  // Retired instances must be quiet before teardown: a timer firing on
  // a frozen instance is exactly the V133 failure mode.
  for (const auto& retired : a.retired) {
    xorp::XorpInstance& xorp = retired->xorp();
    if ((xorp.ospf() && xorp.ospf()->running()) ||
        (xorp.rip() && xorp.rip()->running())) {
      violations_.error("V133", "router " + router,
                        "retired instance still running at verify");
    }
  }
  logLine("migrate " + router + (record.rolled_back ? " rollback verified"
                                                    : " verified"));
  VINI_OBS_TIMELINE_INSTANT("migrate/" + router, "verify", queue_.now());
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    ctx->metrics.counter("migrate", router, "completed").inc();
  }
  // Destroy the Active (and with it the lingering retired routers —
  // their queued closures drained during the verify delay).  Deferred
  // by one event: erasing here would destroy the very timer whose
  // callback frame we are standing in.
  queue_.schedule(queue_.now(), [this, router] { in_flight_.erase(router); });
}

void MigrationManager::auditNoForwardingLoop(const std::string& context) {
  // Walk every router-pair route over the live FIBs (the V121 walk,
  // applied mid-migration).
  std::unordered_map<packet::IpAddress, overlay::IiasRouter*> owner;
  for (const auto& router : iias_.routers()) {
    owner[router->vnode().tapAddress()] = router.get();
    for (const auto& iface : router->vnode().interfaces()) {
      owner[iface->address()] = router.get();
    }
  }
  for (const auto& src : iias_.routers()) {
    for (const auto& dst : iias_.routers()) {
      if (src.get() == dst.get()) continue;
      const packet::IpAddress target = dst->vnode().tapAddress();
      overlay::IiasRouter* cur = src.get();
      std::unordered_set<std::string> visited{cur->vnode().name()};
      while (true) {
        const auto entry = cur->fibElement().fib().lookup(target);
        if (!entry) break;            // blackhole: lossy, but not looping
        if (entry->port != 0) break;  // delivered off the tunnel mesh
        if (entry->next_hop.isZero()) break;
        auto it = owner.find(entry->next_hop);
        if (it == owner.end()) break;
        overlay::IiasRouter* next = it->second;
        if (!visited.insert(next->vnode().name()).second) {
          violations_.error("V131", context,
                            "forwarding loop: " + next->vnode().name() +
                                " revisited while resolving " + target.str());
          break;
        }
        cur = next;
      }
    }
  }
}

void MigrationManager::auditInvariants(check::Report& report) const {
  // Live findings first (V131 at resume, V133 at verify).
  for (const auto& d : violations_.diagnostics()) {
    report.add(d.severity, d.code, d.location, d.message);
  }
  // V130: the downtime budget is a hard invariant on every terminal
  // record — completed and rolled-back alike.
  for (const auto& record : records_) {
    if (record.t_resume == 0) continue;  // never froze / still in flight
    if (record.downtime_ms > record.budget_ms) {
      report.error("V130", "migrate " + record.router,
                   "downtime " + formatMs(record.downtime_ms) +
                       " ms exceeds budget " + formatMs(record.budget_ms) +
                       " ms" + (record.rolled_back ? " (rolled back)" : ""));
    }
  }
  // V132: migration-span conservation — every freeze resumed exactly
  // once (no router left frozen, no record frozen-but-never-resumed).
  for (const auto& router : frozen_) {
    report.error("V132", "router " + router,
                 "router left frozen after the campaign");
  }
  for (const auto& record : records_) {
    if (record.t_freeze != 0 && record.t_resume == 0) {
      report.error("V132", "migrate " + record.router,
                   "froze at t=" + formatTime(record.t_freeze) +
                       " but never resumed");
    }
  }
  // V133: any still-lingering retired instance must be quiet.
  for (const auto& [router, active] : in_flight_) {
    for (const auto& retired : active->retired) {
      xorp::XorpInstance& xorp = retired->xorp();
      if (xorp.ospf() && !xorp.ospf()->running() &&
          !xorp.ospf()->timersQuiet()) {
        report.error("V133", "router " + router,
                     "frozen ospf instance still owns armed timers");
      }
      if (xorp.rip() && !xorp.rip()->running() && !xorp.rip()->timersQuiet()) {
        report.error("V133", "router " + router,
                     "frozen rip instance still owns armed timers");
      }
    }
  }
}

std::string MigrationManager::reportJson() const {
  std::ostringstream os;
  os << "{\"migrations\":[";
  for (std::size_t i = 0; i < records_.size(); ++i) {
    const MigrationRecord& r = records_[i];
    if (i) os << ",";
    os << "{\"router\":\"" << r.router << "\",\"from\":\"" << r.from
       << "\",\"to\":\"" << r.to << "\",\"budget_ms\":" << formatMs(r.budget_ms)
       << ",\"downtime_ms\":" << formatMs(r.downtime_ms)
       << ",\"attempts\":" << r.attempts << ",\"completed\":"
       << (r.completed ? "true" : "false") << ",\"rolled_back\":"
       << (r.rolled_back ? "true" : "false") << ",\"t_freeze\":\""
       << formatTime(r.t_freeze) << "\",\"t_resume\":\""
       << formatTime(r.t_resume) << "\"}";
  }
  os << "]}";
  return os.str();
}

}  // namespace vini::migrate
