// Serializable virtual-router checkpoints for live slice migration.
//
// A checkpoint captures everything a virtual router needs to resume
// forwarding on another substrate node without its established flows
// noticing: the OSPF LSDB and own-LSA sequence number (for a warm
// restart that outbids stale copies), the RIP table, the BGP origin
// set, the port-0 tunnel FIB (for instant data-plane forwarding before
// the control plane re-converges), and the OpenVPN ingress leases.
//
// Checkpoints travel through a versioned line-oriented wire format —
// `emitCheckpoint` / `parseCheckpoint` round-trip byte-identically, and
// the migration manager ships every checkpoint through the text form so
// the grammar is exercised on the production path, not just in tests.
//
//   vini-checkpoint v1
//   router Fwdr
//   ospf 3
//   lsa 10.1.0.2 3
//   lsa-link 10.1.0.1 10.1.1.0/30 1
//   lsa-stub 10.1.0.2/32 0
//   rip 10.1.0.0/24 2 10.1.1.1 vif0
//   bgp 0.0.0.0/0
//   fib 10.1.0.3/32 10.1.1.2
//   lease 203.0.113.5 4242 10.1.250.10 77
//   lease-next 11
//   end
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "overlay/iias_router.h"
#include "overlay/openvpn.h"
#include "xorp/ospf.h"
#include "xorp/rip.h"

namespace vini::migrate {

/// A port-0 (tunnel-mesh) FIB route; next_hop zero = directly attached.
struct FibRoute {
  packet::Prefix prefix;
  packet::IpAddress next_hop;
};

struct RouterCheckpoint {
  std::string router;  ///< virtual node name

  bool has_ospf = false;
  xorp::OspfProcess::Checkpoint ospf;

  bool has_rip = false;
  xorp::RipProcess::Checkpoint rip;

  bool has_bgp = false;
  std::vector<packet::Prefix> bgp_origins;

  /// Port-0 tunnel routes, captured directly from the Click FIB so the
  /// rebuilt router forwards the instant it is wired — locally attached
  /// ports (tap, NAPT, stub sinks) are rebuilt by construction instead.
  std::vector<FibRoute> fib;

  bool has_leases = false;
  std::vector<overlay::OpenVpnLease> leases;
  std::uint32_t lease_next_host = 0;
};

/// Snapshot a (running or stopped) router.  Capture *before* stop():
/// stopping a daemon models a crash and clears its protocol state.
/// Leases are not captured here — the migration manager fills them in
/// when an ingress server rides along.
RouterCheckpoint captureCheckpoint(overlay::IiasRouter& router);

/// Re-seed a *stopped* router from a checkpoint: warm-restarts the
/// daemons and installs the tunnel FIB directly.  Throws
/// std::runtime_error if any daemon is running.  Lease restoration is
/// the manager's job (the server object is external to the router).
void restoreCheckpoint(overlay::IiasRouter& router,
                       const RouterCheckpoint& checkpoint);

/// Emit the versioned text form.  Deterministic: every collection is
/// emitted in sorted (capture) order, integers only.
std::string emitCheckpoint(const RouterCheckpoint& checkpoint);

/// Parse the text form; throws std::runtime_error with a 1-based line
/// number ("checkpoint line 7: ...") on malformed input or an
/// unsupported version.
RouterCheckpoint parseCheckpoint(const std::string& text);

}  // namespace vini::migrate
