#include "migrate/checkpoint.h"

#include <sstream>
#include <stdexcept>

#include "click/fib.h"
#include "xorp/bgp.h"

namespace vini::migrate {

namespace {

std::string addr(std::uint32_t value) {
  return packet::IpAddress(value).str();
}

[[noreturn]] void badLine(std::size_t line, const std::string& message) {
  throw std::runtime_error("checkpoint line " + std::to_string(line) + ": " +
                           message);
}

packet::IpAddress parseAddr(const std::string& token, std::size_t line) {
  auto parsed = packet::IpAddress::parse(token);
  if (!parsed) badLine(line, "malformed address '" + token + "'");
  return *parsed;
}

packet::Prefix parsePrefix(const std::string& token, std::size_t line) {
  auto parsed = packet::Prefix::parse(token);
  if (!parsed) badLine(line, "malformed prefix '" + token + "'");
  return *parsed;
}

std::uint32_t parseU32(const std::string& token, std::size_t line) {
  try {
    std::size_t pos = 0;
    const unsigned long value = std::stoul(token, &pos);
    if (pos != token.size() || value > 0xffffffffull) throw std::exception();
    return static_cast<std::uint32_t>(value);
  } catch (...) {
    badLine(line, "malformed integer '" + token + "'");
  }
}

}  // namespace

RouterCheckpoint captureCheckpoint(overlay::IiasRouter& router) {
  RouterCheckpoint cp;
  cp.router = router.vnode().name();
  if (xorp::OspfProcess* ospf = router.xorp().ospf()) {
    cp.has_ospf = true;
    cp.ospf = ospf->checkpoint();
  }
  if (xorp::RipProcess* rip = router.xorp().rip()) {
    cp.has_rip = true;
    cp.rip = rip->checkpoint();
  }
  if (xorp::BgpProcess* bgp = router.xorp().bgp()) {
    cp.has_bgp = true;
    cp.bgp_origins = bgp->origins();
  }
  router.fibElement().fib().forEach([&cp](const click::FibEntry& entry) {
    if (entry.port == 0) cp.fib.push_back(FibRoute{entry.prefix, entry.next_hop});
  });
  return cp;
}

void restoreCheckpoint(overlay::IiasRouter& router,
                       const RouterCheckpoint& checkpoint) {
  if (checkpoint.has_ospf) {
    if (!router.xorp().ospf()) {
      throw std::runtime_error("checkpoint has OSPF state but router " +
                               router.vnode().name() + " runs no OSPF");
    }
    router.xorp().ospf()->restore(checkpoint.ospf);
  }
  if (checkpoint.has_rip) {
    if (!router.xorp().rip()) {
      throw std::runtime_error("checkpoint has RIP state but router " +
                               router.vnode().name() + " runs no RIP");
    }
    router.xorp().rip()->restore(checkpoint.rip);
  }
  if (checkpoint.has_bgp && router.xorp().bgp()) {
    router.xorp().bgp()->restoreOrigins(checkpoint.bgp_origins);
  }
  for (const FibRoute& route : checkpoint.fib) {
    click::FibEntry entry;
    entry.prefix = route.prefix;
    entry.next_hop = route.next_hop;
    entry.port = 0;
    router.fibElement().fib().addRoute(entry);
  }
}

std::string emitCheckpoint(const RouterCheckpoint& checkpoint) {
  std::ostringstream os;
  os << "vini-checkpoint v1\n";
  os << "router " << checkpoint.router << "\n";
  if (checkpoint.has_ospf) {
    os << "ospf " << checkpoint.ospf.own_seq << "\n";
    for (const xorp::RouterLsa& lsa : checkpoint.ospf.lsdb) {
      os << "lsa " << addr(lsa.origin) << " " << lsa.seq << "\n";
      for (const xorp::LsaLink& link : lsa.links) {
        os << "lsa-link " << addr(link.neighbor_id) << " " << link.subnet.str()
           << " " << link.cost << "\n";
      }
      for (const auto& [prefix, cost] : lsa.stubs) {
        os << "lsa-stub " << prefix.str() << " " << cost << "\n";
      }
    }
  }
  if (checkpoint.has_rip) {
    for (const auto& route : checkpoint.rip.routes) {
      os << "rip " << route.prefix.str() << " " << route.metric << " "
         << route.next_hop.str();
      if (!route.vif.empty()) os << " " << route.vif;
      os << "\n";
    }
    if (checkpoint.rip.routes.empty()) os << "rip-empty\n";
  }
  if (checkpoint.has_bgp) {
    for (const auto& prefix : checkpoint.bgp_origins) {
      os << "bgp " << prefix.str() << "\n";
    }
    if (checkpoint.bgp_origins.empty()) os << "bgp-empty\n";
  }
  for (const FibRoute& route : checkpoint.fib) {
    os << "fib " << route.prefix.str() << " " << route.next_hop.str() << "\n";
  }
  if (checkpoint.has_leases) {
    for (const overlay::OpenVpnLease& lease : checkpoint.leases) {
      os << "lease " << lease.real_addr.str() << " " << lease.real_port << " "
         << lease.overlay_addr.str() << " " << lease.session_id << "\n";
    }
    os << "lease-next " << checkpoint.lease_next_host << "\n";
  }
  os << "end\n";
  return os.str();
}

RouterCheckpoint parseCheckpoint(const std::string& text) {
  RouterCheckpoint cp;
  std::istringstream is(text);
  std::string line;
  std::size_t lineno = 0;
  bool saw_header = false;
  bool saw_end = false;
  while (std::getline(is, line)) {
    ++lineno;
    if (line.empty() || line[0] == '#') continue;
    if (saw_end) badLine(lineno, "content after 'end'");
    std::istringstream ls(line);
    std::vector<std::string> tok;
    for (std::string t; ls >> t;) tok.push_back(t);
    if (tok.empty()) continue;
    if (!saw_header) {
      if (tok.size() != 2 || tok[0] != "vini-checkpoint") {
        badLine(lineno, "expected 'vini-checkpoint v<N>' header");
      }
      if (tok[1] != "v1") badLine(lineno, "unsupported version '" + tok[1] + "'");
      saw_header = true;
      continue;
    }
    const std::string& kind = tok[0];
    if (kind == "router") {
      if (tok.size() != 2) badLine(lineno, "expected 'router <name>'");
      cp.router = tok[1];
    } else if (kind == "ospf") {
      if (tok.size() != 2) badLine(lineno, "expected 'ospf <own_seq>'");
      cp.has_ospf = true;
      cp.ospf.own_seq = parseU32(tok[1], lineno);
    } else if (kind == "lsa") {
      if (!cp.has_ospf) badLine(lineno, "'lsa' before 'ospf'");
      if (tok.size() != 3) badLine(lineno, "expected 'lsa <origin> <seq>'");
      xorp::RouterLsa lsa;
      lsa.origin = parseAddr(tok[1], lineno).value();
      lsa.seq = parseU32(tok[2], lineno);
      cp.ospf.lsdb.push_back(lsa);
    } else if (kind == "lsa-link") {
      if (cp.ospf.lsdb.empty()) badLine(lineno, "'lsa-link' before any 'lsa'");
      if (tok.size() != 4) {
        badLine(lineno, "expected 'lsa-link <neighbor> <subnet> <cost>'");
      }
      xorp::LsaLink link;
      link.neighbor_id = parseAddr(tok[1], lineno).value();
      link.subnet = parsePrefix(tok[2], lineno);
      link.cost = parseU32(tok[3], lineno);
      cp.ospf.lsdb.back().links.push_back(link);
    } else if (kind == "lsa-stub") {
      if (cp.ospf.lsdb.empty()) badLine(lineno, "'lsa-stub' before any 'lsa'");
      if (tok.size() != 3) badLine(lineno, "expected 'lsa-stub <prefix> <cost>'");
      cp.ospf.lsdb.back().stubs.emplace_back(parsePrefix(tok[1], lineno),
                                             parseU32(tok[2], lineno));
    } else if (kind == "rip") {
      if (tok.size() != 4 && tok.size() != 5) {
        badLine(lineno, "expected 'rip <prefix> <metric> <next_hop> [<vif>]'");
      }
      xorp::RipProcess::CheckpointRoute route;
      route.prefix = parsePrefix(tok[1], lineno);
      route.metric = parseU32(tok[2], lineno);
      route.next_hop = parseAddr(tok[3], lineno);
      if (tok.size() == 5) route.vif = tok[4];
      cp.has_rip = true;
      cp.rip.routes.push_back(route);
    } else if (kind == "rip-empty") {
      cp.has_rip = true;
    } else if (kind == "bgp") {
      if (tok.size() != 2) badLine(lineno, "expected 'bgp <prefix>'");
      cp.has_bgp = true;
      cp.bgp_origins.push_back(parsePrefix(tok[1], lineno));
    } else if (kind == "bgp-empty") {
      cp.has_bgp = true;
    } else if (kind == "fib") {
      if (tok.size() != 3) badLine(lineno, "expected 'fib <prefix> <next_hop>'");
      cp.fib.push_back(
          FibRoute{parsePrefix(tok[1], lineno), parseAddr(tok[2], lineno)});
    } else if (kind == "lease") {
      if (tok.size() != 5) {
        badLine(lineno,
                "expected 'lease <real_addr> <real_port> <overlay> <session>'");
      }
      overlay::OpenVpnLease lease;
      lease.real_addr = parseAddr(tok[1], lineno);
      const std::uint32_t port = parseU32(tok[2], lineno);
      if (port > 0xffff) badLine(lineno, "port out of range");
      lease.real_port = static_cast<std::uint16_t>(port);
      lease.overlay_addr = parseAddr(tok[3], lineno);
      lease.session_id = parseU32(tok[4], lineno);
      cp.has_leases = true;
      cp.leases.push_back(lease);
    } else if (kind == "lease-next") {
      if (tok.size() != 2) badLine(lineno, "expected 'lease-next <n>'");
      cp.has_leases = true;
      cp.lease_next_host = parseU32(tok[1], lineno);
    } else if (kind == "end") {
      if (tok.size() != 1) badLine(lineno, "'end' takes no arguments");
      saw_end = true;
    } else {
      badLine(lineno, "unknown directive '" + kind + "'");
    }
  }
  if (!saw_header) badLine(lineno + 1, "missing 'vini-checkpoint v1' header");
  if (!saw_end) badLine(lineno + 1, "missing 'end'");
  if (cp.router.empty()) badLine(lineno + 1, "missing 'router <name>'");
  return cp;
}

}  // namespace vini::migrate
