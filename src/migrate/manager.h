// MigrationManager: live slice migration with downtime budgets.
//
// Moves a running virtual router (IIAS router + tunnels + XORP daemons)
// between substrate nodes without breaking established TCP flows
// through it.  The state machine:
//
//   prepare -> pre-copy -> freeze -> switchover -> resume -> verify
//                             \         |
//                              \        v (probe fails / admission)
//                               \    retry (capped exp backoff + jitter)
//                                \      |
//                                 `-> rollback (budget would be breached)
//
// Every phase has an explicit deadline.  The downtime budget governs
// the freeze window: if retries cannot complete the switchover inside
// the budget, the manager rolls back — the source router warm-restarts
// from the same checkpoint, with its original OpenVPN leases intact —
// so the budget holds on *every* path.
//
// Runtime invariants (auditInvariants):
//   V130  downtime within budget, on completed and rolled-back
//         migrations alike;
//   V131  no forwarding loop across the overlay at the moment a
//         migration resumes (checked against the live FIBs);
//   V132  migration-span conservation: every freeze has exactly one
//         matching resume or rollback, and no router is left frozen;
//   V133  no frozen-instance timers firing: retired and rolled-over
//         daemon instances hold no armed timers.
//
// The freeze window is exported to the obs Timeline as a
// "migrate/<router>" track (switchover duration + phase instants), so
// the outage is visible in Chrome-trace form next to the packet spans.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "check/diagnostic.h"
#include "core/vini.h"
#include "migrate/checkpoint.h"
#include "overlay/iias.h"
#include "overlay/openvpn.h"
#include "phys/network.h"
#include "sim/event_queue.h"
#include "sim/random.h"

namespace vini::migrate {

/// Phase deadlines and the switchover retry policy (the Supervisor's
/// capped-exponential-backoff-with-seeded-jitter shape).
struct MigrationPolicy {
  /// Downtime allowed between freeze and resume when the migrate verb
  /// does not carry its own `budget=` value.
  double default_budget_ms = 500.0;
  /// Pre-copy duration ceiling (the warm state transfer ahead of the
  /// freeze; actual duration scales with checkpoint size).
  sim::Duration precopy_deadline = 5 * sim::kSecond;
  /// How long a retired source instance lingers before verification
  /// tears it down — queued data-plane closures drain meanwhile.
  sim::Duration verify_delay = 10 * sim::kSecond;
  int max_switchover_attempts = 5;
  sim::Duration initial_backoff = 50 * sim::kMillisecond;
  double multiplier = 2.0;
  sim::Duration max_backoff = sim::kSecond;
  /// Relative jitter on each backoff delay, in [1 - jitter, 1 + jitter].
  double jitter = 0.25;
  std::uint64_t seed = 1;
};

struct MigrationRecord {
  std::string router;
  std::string from;  ///< substrate node at request time
  std::string to;    ///< requested destination
  double budget_ms = 0;
  sim::Time t_request = 0;
  sim::Time t_freeze = 0;
  sim::Time t_resume = 0;
  sim::Time t_verified = 0;
  double downtime_ms = 0;
  int attempts = 0;
  bool completed = false;    ///< switched over and verified
  bool rolled_back = false;  ///< back on the source, budget respected
  std::string failure;       ///< why the switchover gave up (if it did)
};

class MigrationManager {
 public:
  MigrationManager(sim::EventQueue& queue, phys::PhysNetwork& net,
                   core::Vini& vini, overlay::IiasNetwork& iias,
                   MigrationPolicy policy = {});
  ~MigrationManager();

  MigrationManager(const MigrationManager&) = delete;
  MigrationManager& operator=(const MigrationManager&) = delete;

  // -- Wiring ------------------------------------------------------------------

  /// Called at freeze with each supervised daemon id ("<router>/ospf",
  /// ...) so an external supervisor forgets its (soon stale) handles.
  void setDaemonForget(std::function<void(const std::string&)> fn) {
    daemon_forget_ = std::move(fn);
  }

  /// Destination health probe, consulted before each switchover attempt
  /// (e.g. "has chaos crashed that node?").  Absent = always healthy.
  void setNodeProbe(std::function<bool(const std::string&)> fn) {
    node_probe_ = std::move(fn);
  }

  /// Carry an OpenVPN ingress along: when the server's router migrates,
  /// its leases ride the checkpoint, the server re-attaches to the
  /// rebuilt router, and each client re-pins its underlay host route.
  void attachIngress(overlay::OpenVpnServer* server,
                     std::vector<overlay::OpenVpnClient*> clients);

  // -- The verb ----------------------------------------------------------------

  /// Start migrating `router` to substrate node `dest`.  Throws on an
  /// unknown router or destination; a router already mid-migration
  /// logs and skips (campaigns may schedule overlapping moves).
  void requestMigration(const std::string& router, const std::string& dest,
                        std::optional<double> budget_ms = std::nullopt);

  /// True while `router` is frozen (checkpointed, daemons down, its
  /// pointers about to go stale) — fault injectors must not capture or
  /// restart its daemons.
  bool frozen(const std::string& router) const {
    return frozen_.count(router) != 0;
  }

  std::size_t activeMigrations() const { return in_flight_.size(); }
  const std::vector<MigrationRecord>& records() const { return records_; }

  struct LogEntry {
    sim::Time when = 0;
    std::string text;
  };
  const std::vector<LogEntry>& log() const { return log_; }

  /// Append V130–V133 findings to `report` (call on a quiesced world).
  void auditInvariants(check::Report& report) const;

  /// Deterministic JSON summary of every record (the CI artifact).
  std::string reportJson() const;

 private:
  enum class Phase { kPrecopy, kRetry, kVerify };

  struct Active {
    std::size_t record_index = 0;  ///< into records_ (indices are stable)
    std::string router;
    std::string dest;
    packet::IpAddress from_addr;  ///< substrate address before the move
    std::string wire;             ///< checkpoint, in wire form
    bool carries_ingress = false;
    int attempts = 0;
    Phase phase = Phase::kPrecopy;
    /// One timer per migration, created once and re-armed between
    /// phases — a timer must never be destroyed from its own callback.
    std::unique_ptr<sim::OneShotTimer> timer;
    /// Retired instances linger here until verify: queued CPU-process
    /// closures may still hold raw element pointers into them.
    std::vector<std::unique_ptr<overlay::IiasRouter>> retired;
  };

  void step(Active& a);
  void freezeAndSwitch(Active& a);
  void attemptSwitchover(Active& a);
  void resume(Active& a, bool rolled_back);
  void rollback(Active& a, const std::string& why);
  void verify(Active& a);
  void auditNoForwardingLoop(const std::string& context);
  void logLine(const std::string& text);
  sim::Duration backoffDelay(int attempt);

  sim::EventQueue& queue_;
  phys::PhysNetwork& net_;
  core::Vini& vini_;
  overlay::IiasNetwork& iias_;
  MigrationPolicy policy_;
  sim::Random random_;

  std::function<void(const std::string&)> daemon_forget_;
  std::function<bool(const std::string&)> node_probe_;
  overlay::OpenVpnServer* vpn_server_ = nullptr;
  std::vector<overlay::OpenVpnClient*> vpn_clients_;

  std::set<std::string> frozen_;
  std::map<std::string, std::unique_ptr<Active>> in_flight_;
  std::vector<MigrationRecord> records_;
  std::vector<LogEntry> log_;
  check::Report violations_;  ///< V131 findings, caught live at resume
};

}  // namespace vini::migrate
