#include "overlay/openvpn.h"

#include <algorithm>

#include "obs/obs.h"

namespace vini::overlay {

// ---------------------------------------------------------------------------
// OpenVpnServer

OpenVpnServer::OpenVpnServer(IiasRouter& router, packet::Prefix client_pool)
    : router_(&router), pool_(client_pool) {
  egress_element_ = std::make_unique<EgressElement>(*this);
  router_->attachStubPrefix(pool_, *egress_element_);
  tcpip::UdpSocket& socket = router_->stack().openUdp(kOpenVpnPort);
  socket.setReceiveHandler([this](packet::Packet p) { onDatagram(std::move(p)); });
}

OpenVpnServer::~OpenVpnServer() { router_->stack().closeUdp(kOpenVpnPort); }

std::vector<OpenVpnLease> OpenVpnServer::exportLeases() const {
  std::vector<OpenVpnLease> leases;
  leases.reserve(by_source_.size());
  for (const auto& [addr, session] : by_source_) {
    leases.push_back(OpenVpnLease{session.real_addr, session.real_port,
                                  session.overlay_addr, session.session_id});
  }
  return leases;  // by_source_ is a std::map: already sorted by real addr
}

void OpenVpnServer::restoreLeases(const std::vector<OpenVpnLease>& leases,
                                  std::uint32_t next_host) {
  by_source_.clear();
  by_overlay_.clear();
  for (const auto& lease : leases) {
    Session session{lease.real_addr, lease.real_port, lease.overlay_addr,
                    lease.session_id};
    by_source_[lease.real_addr] = session;
    by_overlay_[lease.overlay_addr] = session;
  }
  next_host_ = next_host;
}

void OpenVpnServer::attachTo(IiasRouter& router) {
  if (&router == router_) return;
  // The retired ingress stops answering; if both routers share a stack
  // (rollback) the port was already closed by the retired router's
  // detach, and this close is a no-op.
  router_->stack().closeUdp(kOpenVpnPort);
  router_ = &router;
  router_->attachStubPrefix(pool_, *egress_element_);
  tcpip::UdpSocket& socket = router_->stack().openUdp(kOpenVpnPort);
  socket.setReceiveHandler([this](packet::Packet p) { onDatagram(std::move(p)); });
}

packet::IpAddress OpenVpnServer::openSession(packet::IpAddress real_addr,
                                             std::uint16_t real_port,
                                             std::uint32_t session_id) {
  if (auto it = by_source_.find(real_addr); it != by_source_.end()) {
    return it->second.overlay_addr;  // reconnect: keep the lease
  }
  const packet::IpAddress overlay = pool_.hostAt(next_host_);
  if (!pool_.contains(overlay) || next_host_ >= (1u << (32 - pool_.length())) - 1) {
    return packet::IpAddress{};  // pool exhausted
  }
  ++next_host_;
  Session session{real_addr, real_port, overlay, session_id};
  by_source_[real_addr] = session;
  by_overlay_[overlay] = session;
  return overlay;
}

void OpenVpnServer::handleControl(const packet::Packet& p,
                                  const OpenVpnControl& msg) {
  tcpip::UdpSocket* socket = router_->stack().udpSocket(kOpenVpnPort);
  if (!socket) return;
  const auto* udp = p.udpHeader();
  if (!udp) return;
  auto reply = std::make_shared<OpenVpnControl>();
  reply->session_id = msg.session_id;
  if (msg.kind == OpenVpnControl::kSessionRequest) {
    reply->kind = OpenVpnControl::kSessionGrant;
    reply->overlay_addr = openSession(p.ip.src, udp->src_port, msg.session_id);
  } else if (msg.kind == OpenVpnControl::kKeepalive) {
    // Only answer for a live session: a server that lost the session
    // (or never had it) stays silent and the client reconnects.
    if (by_source_.find(p.ip.src) == by_source_.end()) return;
    reply->kind = OpenVpnControl::kKeepaliveAck;
  } else {
    return;
  }
  socket->sendAppTo(p.ip.src, udp->src_port, std::move(reply));
}

void OpenVpnServer::onDatagram(packet::Packet p) {
  // Control channel: handshake and keepalives.
  if (p.app) {
    if (auto msg = std::dynamic_pointer_cast<const OpenVpnControl>(p.app)) {
      handleControl(p, *msg);
    }
    return;
  }
  // Data channel: an encapsulated IP packet from an opted-in client.
  if (!p.inner) {
    VINI_OBS_ROOT_DROP(p.meta.trace_id, "non_tunnel");
    return;
  }
  auto it = by_source_.find(p.ip.src);
  if (it == by_source_.end()) {  // no session: drop
    VINI_OBS_ROOT_DROP(p.meta.trace_id, "no_vpn_session");
    return;
  }
  ++ingress_packets_;
  // "The OpenVPN server removes the headers and forwards the original
  // packet to Click over a local Unix domain socket."  (Figure 2, step 2)
  router_->injectIntoDataPlane(*p.inner);
}

void OpenVpnServer::EgressElement::push(int, packet::Packet p) {
  auto it = server_.by_overlay_.find(p.ip.dst);
  if (it == server_.by_overlay_.end()) {
    VINI_OBS_ROOT_DROP(p.meta.trace_id, "no_vpn_session");
    return;
  }
  ++count_;
  server_.sendToClient(it->second, std::move(p));
}

void OpenVpnServer::sendToClient(const Session& session, packet::Packet p) {
  tcpip::UdpSocket* socket = router_->stack().udpSocket(kOpenVpnPort);
  if (!socket) {
    VINI_OBS_ROOT_DROP(p.meta.trace_id, "socket_gone");
    return;
  }
  socket->sendEncapsulatedTo(session.real_addr, session.real_port,
                             std::make_shared<const packet::Packet>(std::move(p)),
                             packet::OpenVpnHeader::kWireBytes);
}

// ---------------------------------------------------------------------------
// OpenVpnClient

namespace {

/// FNV-1a, for folding a client's name into its jitter seed.
std::uint64_t hashName(const std::string& name) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace

OpenVpnClient::OpenVpnClient(tcpip::HostStack& stack, std::string name)
    : stack_(stack), name_(std::move(name)) {
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    span_layer_ = ctx->spans.intern("overlay.openvpn");
    span_node_ = ctx->spans.intern(stack_.node().name());
  }
}

OpenVpnClient::~OpenVpnClient() = default;

void OpenVpnClient::ensureSocket() {
  if (socket_) return;
  socket_ = &stack_.openUdp(0);
  session_id_ = socket_->port();  // cheap unique id
  socket_->setReceiveHandler([this](packet::Packet p) { onDatagram(std::move(p)); });
}

void OpenVpnClient::plumbTunnel() {
  if (tun_) return;
  // "OpenVPN creates a TUN/TAP device on the client to intercept
  // outgoing packets from the operating system."
  tun_ = &stack_.createTunDevice("tun-" + name_, overlay_addr_);
  tun_->setReader([this](packet::Packet p) { onTunPacket(std::move(p)); });

  // Routing: everything into the tunnel, except the server itself.
  tcpip::Route all;
  all.prefix = packet::Prefix::defaultRoute();
  all.device = tun_;
  all.metric = 5;  // beats the underlay default route (metric 100)
  all.proto = "openvpn";
  stack_.routingTable().addRoute(all);
  tcpip::Route server_host;
  server_host.prefix = packet::Prefix(server_addr_, 32);
  server_host.device = &stack_.underlayDevice();
  server_host.metric = 1;
  server_host.proto = "openvpn";
  stack_.routingTable().addRoute(server_host);
}

void OpenVpnClient::rehome(OpenVpnServer& server) {
  const packet::IpAddress old_addr = server_addr_;
  server_addr_ = server.serverAddress();
  if (server_addr_ == old_addr) return;
  if (!old_addr.isZero()) {
    stack_.routingTable().removeRoute(packet::Prefix(old_addr, 32));
  }
  if (tun_) {
    // Re-pin the (new) server address to the underlay so tunnel frames
    // don't chase the default route into the tun device.
    tcpip::Route server_host;
    server_host.prefix = packet::Prefix(server_addr_, 32);
    server_host.device = &stack_.underlayDevice();
    server_host.metric = 1;
    server_host.proto = "openvpn";
    stack_.routingTable().addRoute(server_host);
  }
}

bool OpenVpnClient::connect(OpenVpnServer& server) {
  server_addr_ = server.serverAddress();
  ensureSocket();
  overlay_addr_ =
      server.openSession(stack_.address(), socket_->port(), session_id_);
  if (overlay_addr_.isZero()) return false;
  plumbTunnel();
  connected_ = true;
  ever_connected_ = true;
  return true;
}

void OpenVpnClient::connectAsync(OpenVpnServer& server,
                                 OpenVpnReconnectConfig config) {
  server_addr_ = server.serverAddress();
  config_ = config;
  // Per-client jitter stream: two clients sharing a config (the common
  // case — callers rarely thread distinct seeds through) must not
  // retry in lockstep, so fold the substrate seed and the client's own
  // name into the stream seed.  Deterministic across same-seed runs.
  const std::uint64_t seed = config.seed ^
                             stack_.network().config().seed *
                                 0x9e3779b97f4a7c15ull ^
                             hashName(name_);
  random_ = std::make_unique<sim::Random>(seed);
  supervised_ = true;
  ensureSocket();
  sim::EventQueue& queue = stack_.queue();
  handshake_timer_ = std::make_unique<sim::OneShotTimer>(queue, [this] {
    // No grant in time: the request or the reply died on the way.
    scheduleRetry();
  });
  retry_timer_ =
      std::make_unique<sim::OneShotTimer>(queue, [this] { attemptHandshake(); });
  dead_timer_ =
      std::make_unique<sim::OneShotTimer>(queue, [this] { onPeerDead(); });
  keepalive_timer_ = std::make_unique<sim::PeriodicTimer>(
      queue, config_.keepalive_interval, [this] {
        if (!socket_ || !connected_) return;
        auto probe = std::make_shared<OpenVpnControl>();
        probe->kind = OpenVpnControl::kKeepalive;
        probe->session_id = session_id_;
        socket_->sendAppTo(server_addr_, kOpenVpnPort, std::move(probe));
      });
  attemptHandshake();
}

void OpenVpnClient::attemptHandshake() {
  if (!socket_ || connected_) return;
  ++handshake_attempts_;
  auto request = std::make_shared<OpenVpnControl>();
  request->kind = OpenVpnControl::kSessionRequest;
  request->session_id = session_id_;
  socket_->sendAppTo(server_addr_, kOpenVpnPort, std::move(request));
  handshake_timer_->armAfter(config_.handshake_timeout);
}

void OpenVpnClient::scheduleRetry() {
  ++consecutive_failures_;
  double delay = static_cast<double>(config_.initial_backoff);
  for (int i = 1; i < consecutive_failures_; ++i) delay *= config_.multiplier;
  delay = std::min(delay, static_cast<double>(config_.max_backoff));
  if (config_.jitter > 0 && random_) {
    delay *= 1.0 + config_.jitter * (2.0 * random_->uniform01() - 1.0);
  }
  retry_timer_->armAfter(static_cast<sim::Duration>(std::max(delay, 0.0)));
}

void OpenVpnClient::onSessionGrant(const OpenVpnControl& msg) {
  handshake_timer_->cancel();
  if (msg.overlay_addr.isZero()) {
    // Refused (pool exhausted): keep retrying with backoff.
    scheduleRetry();
    return;
  }
  overlay_addr_ = msg.overlay_addr;
  plumbTunnel();
  connected_ = true;
  consecutive_failures_ = 0;
  if (ever_connected_) ++reconnects_;
  ever_connected_ = true;
  keepalive_timer_->start();
  dead_timer_->armAfter(config_.peer_timeout);
}

void OpenVpnClient::onPeerDead() {
  // The server went quiet: tear the session state down (routes stay —
  // traffic blackholes into the tun until we re-attach, exactly like a
  // real stranded VPN) and start the backoff'd reconnect loop.
  connected_ = false;
  keepalive_timer_->stop();
  consecutive_failures_ = 0;
  attemptHandshake();
}

void OpenVpnClient::onTunPacket(packet::Packet p) {
  if (!socket_) {
    VINI_OBS_ROOT_DROP(p.meta.trace_id, "socket_gone");
    return;
  }
  ++sent_;
  if (obs::Obs* ctx = VINI_OBS_CTX()) {
    // Opted-in host traffic enters the overlay here.  Packets not
    // already in a trace (the app ingress points assign ids first) get
    // one now so their hop decomposition starts at the VPN; a zero-width
    // span marks the encapsulation itself.
    if (p.meta.trace_id == 0) p.meta.trace_id = ctx->spans.newTraceId();
    const std::uint32_t span =
        ctx->spans.open(p.meta.trace_id, span_layer_, stack_.queue().now(),
                        span_node_, -1,
                        static_cast<std::uint32_t>(p.ipPacketBytes()));
    ctx->spans.close(span, stack_.queue().now());
  }
  // Rewrite nothing: the client sources traffic from its overlay address
  // (applications bind to it).  Encapsulate with OpenVPN framing.
  socket_->sendEncapsulatedTo(server_addr_, kOpenVpnPort,
                              std::make_shared<const packet::Packet>(std::move(p)),
                              packet::OpenVpnHeader::kWireBytes);
}

void OpenVpnClient::onDatagram(packet::Packet p) {
  if (p.app) {
    if (auto msg = std::dynamic_pointer_cast<const OpenVpnControl>(p.app)) {
      if (msg->kind == OpenVpnControl::kSessionGrant) {
        if (!connected_) onSessionGrant(*msg);
      } else if (msg->kind == OpenVpnControl::kKeepaliveAck) {
        if (supervised_ && connected_) dead_timer_->armAfter(config_.peer_timeout);
      }
    }
    return;
  }
  if (!p.inner || !tun_) return;
  ++received_;
  tun_->inject(*p.inner);
}

}  // namespace vini::overlay
