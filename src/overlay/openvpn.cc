#include "overlay/openvpn.h"

namespace vini::overlay {

// ---------------------------------------------------------------------------
// OpenVpnServer

OpenVpnServer::OpenVpnServer(IiasRouter& router, packet::Prefix client_pool)
    : router_(router), pool_(client_pool) {
  egress_element_ = std::make_unique<EgressElement>(*this);
  router_.attachStubPrefix(pool_, *egress_element_);
  tcpip::UdpSocket& socket = router_.stack().openUdp(kOpenVpnPort);
  socket.setReceiveHandler([this](packet::Packet p) { onDatagram(std::move(p)); });
}

OpenVpnServer::~OpenVpnServer() { router_.stack().closeUdp(kOpenVpnPort); }

packet::IpAddress OpenVpnServer::openSession(packet::IpAddress real_addr,
                                             std::uint16_t real_port,
                                             std::uint32_t session_id) {
  if (auto it = by_source_.find(real_addr); it != by_source_.end()) {
    return it->second.overlay_addr;  // reconnect: keep the lease
  }
  const packet::IpAddress overlay = pool_.hostAt(next_host_);
  if (!pool_.contains(overlay) || next_host_ >= (1u << (32 - pool_.length())) - 1) {
    return packet::IpAddress{};  // pool exhausted
  }
  ++next_host_;
  Session session{real_addr, real_port, overlay, session_id};
  by_source_[real_addr] = session;
  by_overlay_[overlay] = session;
  return overlay;
}

void OpenVpnServer::onDatagram(packet::Packet p) {
  // Data channel: an encapsulated IP packet from an opted-in client.
  if (!p.inner) return;
  auto it = by_source_.find(p.ip.src);
  if (it == by_source_.end()) return;  // no session: drop
  ++ingress_packets_;
  // "The OpenVPN server removes the headers and forwards the original
  // packet to Click over a local Unix domain socket."  (Figure 2, step 2)
  router_.injectIntoDataPlane(*p.inner);
}

void OpenVpnServer::EgressElement::push(int, packet::Packet p) {
  auto it = server_.by_overlay_.find(p.ip.dst);
  if (it == server_.by_overlay_.end()) return;
  ++count_;
  server_.sendToClient(it->second, std::move(p));
}

void OpenVpnServer::sendToClient(const Session& session, packet::Packet p) {
  tcpip::UdpSocket* socket = router_.stack().udpSocket(kOpenVpnPort);
  if (!socket) return;
  socket->sendEncapsulatedTo(session.real_addr, session.real_port,
                             std::make_shared<const packet::Packet>(std::move(p)),
                             packet::OpenVpnHeader::kWireBytes);
}

// ---------------------------------------------------------------------------
// OpenVpnClient

OpenVpnClient::OpenVpnClient(tcpip::HostStack& stack, std::string name)
    : stack_(stack), name_(std::move(name)) {}

OpenVpnClient::~OpenVpnClient() = default;

bool OpenVpnClient::connect(OpenVpnServer& server) {
  server_addr_ = server.serverAddress();
  socket_ = &stack_.openUdp(0);
  session_id_ = socket_->port();  // cheap unique id
  overlay_addr_ =
      server.openSession(stack_.address(), socket_->port(), session_id_);
  if (overlay_addr_.isZero()) return false;

  socket_->setReceiveHandler([this](packet::Packet p) { onDatagram(std::move(p)); });

  // "OpenVPN creates a TUN/TAP device on the client to intercept
  // outgoing packets from the operating system."
  tun_ = &stack_.createTunDevice("tun-" + name_, overlay_addr_);
  tun_->setReader([this](packet::Packet p) { onTunPacket(std::move(p)); });

  // Routing: everything into the tunnel, except the server itself.
  tcpip::Route all;
  all.prefix = packet::Prefix::defaultRoute();
  all.device = tun_;
  all.metric = 5;  // beats the underlay default route (metric 100)
  all.proto = "openvpn";
  stack_.routingTable().addRoute(all);
  tcpip::Route server_host;
  server_host.prefix = packet::Prefix(server_addr_, 32);
  server_host.device = &stack_.underlayDevice();
  server_host.metric = 1;
  server_host.proto = "openvpn";
  stack_.routingTable().addRoute(server_host);
  return true;
}

void OpenVpnClient::onTunPacket(packet::Packet p) {
  if (!socket_) return;
  ++sent_;
  // Rewrite nothing: the client sources traffic from its overlay address
  // (applications bind to it).  Encapsulate with OpenVPN framing.
  socket_->sendEncapsulatedTo(server_addr_, kOpenVpnPort,
                              std::make_shared<const packet::Packet>(std::move(p)),
                              packet::OpenVpnHeader::kWireBytes);
}

void OpenVpnClient::onDatagram(packet::Packet p) {
  if (!p.inner || !tun_) return;
  ++received_;
  tun_->inject(*p.inner);
}

}  // namespace vini::overlay
