// IiasNetwork: an "Internet In A Slice" deployed over an embedding.
//
// Builds one IiasRouter per virtual node, registers interfaces with the
// embedding's IGP metrics, wires underlay fate-sharing into the routers'
// drop filters, and provides the experiment controls of Section 5.2:
// failing and restoring virtual links by dropping packets within Click.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/embedder.h"
#include "core/vini.h"
#include "overlay/iias_router.h"
#include "tcpip/stack_manager.h"

namespace vini::overlay {

class IiasNetwork {
 public:
  IiasNetwork(core::Embedding embedding, tcpip::StackManager& stacks,
              IiasConfig config = {});
  ~IiasNetwork();

  IiasNetwork(const IiasNetwork&) = delete;
  IiasNetwork& operator=(const IiasNetwork&) = delete;

  /// Start every router's routing protocols.
  void start();
  void stop();

  core::Slice& slice() { return *embedding_.slice; }
  const core::Embedding& embedding() const { return embedding_; }

  IiasRouter* router(const std::string& vnode_name);
  const std::vector<std::unique_ptr<IiasRouter>>& routers() const {
    return routers_;
  }
  tcpip::StackManager& stacks() { return stacks_; }

  // -- Live migration ----------------------------------------------------------

  /// Rebuild the named virtual node's router on its *current* substrate
  /// home (the caller re-homed the node through core::Vini first) and
  /// repair every neighbor's tunnel to point at the new address.  The
  /// replacement starts stopped with an empty control plane — restore a
  /// checkpoint and start() it.  Returns the retired predecessor,
  /// detached from its stack but kept alive: queued data-plane closures
  /// may still reference its elements.  `previous_node_addr` is the
  /// substrate address the node lived at before the re-home (neighbors
  /// may still hold drop-filter state keyed by it).
  std::unique_ptr<IiasRouter> rehomeRouter(const std::string& vnode_name,
                                           packet::IpAddress previous_node_addr);

  // -- Section 5.2 failure controls -------------------------------------------

  /// Fail the virtual link between two virtual nodes by dropping its
  /// packets inside Click at both ends.
  void failLink(const std::string& a, const std::string& b);
  void restoreLink(const std::string& a, const std::string& b);

  /// Enable upcall-driven fast failover (Section 6.1: "performing
  /// 'upcalls' to notify the affected slices"): when the VINI layer
  /// reports a virtual link down (an exposed underlay failure), the
  /// routers at both ends tear the OSPF adjacency down immediately
  /// instead of waiting out the 10 s dead interval.
  void enableUpcallFailover(core::Vini& vini);

  // -- Convergence helpers --------------------------------------------------------

  /// True when every router is fully adjacent on every up interface.
  bool allAdjacent() const;

  /// Total OSPF route count across routers (for convergence checks).
  std::size_t totalOspfRoutes() const;

 private:
  void applyLinkState(core::VirtualLink& link, bool up);

  core::Embedding embedding_;
  tcpip::StackManager& stacks_;
  IiasConfig config_;
  std::vector<std::unique_ptr<IiasRouter>> routers_;
  std::map<std::string, IiasRouter*> by_name_;
};

}  // namespace vini::overlay
