// The IIAS router (Figure 1 of the paper).
//
// One per virtual node: a Click data plane (user-space process subject
// to the slice's CPU resources), a XORP control plane (another process
// in the slice), the uml_switch bridge between them, and the tap0
// device through which local applications enter the overlay.  The
// router implements XORP's FEA: RIB changes program the Click FIB, so
// "data packets forwarded by the overlay do not enter UML" — the
// decoupled control/data planes of Section 4.2.
//
// Click graph (built through the Click-language parser):
//
//   from(tunnels) ──▶ demux ── [0 control] ──▶ uml ──▶ (XORP)
//        tapin ───────▶│  └──── [1 local] ──▶ tapout (kernel)
//   (XORP) ▶ uml [0] ──┤        [2 transit] ─▶ ttl ─▶ rt
//                      ▼
//        rt [0 tunnels] ─▶ encap ─▶ fail ─▶ [shaper] ─▶ tosock
//        rt [1 local] ──▶ tapout
//        rt [2 external] ─▶ napt ─▶ (kernel) ▶ Internet
//        napt [0 return] ─▶ rt
#pragma once

#include <memory>
#include <set>
#include <string>

#include "click/elements.h"
#include "click/graph.h"
#include "core/slice.h"
#include "tcpip/host_stack.h"
#include "xorp/xorp_instance.h"

namespace vini::overlay {

struct IiasConfig {
  /// Per-packet forwarder cost model (reference machine).
  click::ClickCostModel costs;
  /// OSPF timers etc.; router_id is assigned per node.
  xorp::OspfConfig ospf;
  bool enable_ospf = true;
  bool enable_rip = false;
  xorp::RipConfig rip;
  /// Click's UDP socket buffer (0 = stack default ~110 KB).
  std::size_t socket_buffer = 0;
};

class IiasRouter final : public xorp::Fea {
 public:
  IiasRouter(core::VirtualNode& vnode, tcpip::HostStack& stack, IiasConfig config);
  ~IiasRouter() override;

  IiasRouter(const IiasRouter&) = delete;
  IiasRouter& operator=(const IiasRouter&) = delete;

  /// Register the virtual node's interfaces with the routing daemon,
  /// using the supplied per-link IGP metrics (from the embedding).
  /// Links absent from the map get cost 1.
  void registerVifs(
      const std::map<const core::VirtualLink*, std::uint32_t>& link_costs);

  /// Start the routing protocols.
  void start();
  void stop();

  /// Release this router's grip on its host stack: close the tunnel
  /// socket, remove the tap device (and every route through it), drop
  /// the interface addresses, and detach the FEA.  Called on a retired
  /// router after a live migration built its replacement on another
  /// node.  The object stays alive — queued CPU-process closures may
  /// still hold element pointers — but it no longer sees traffic.
  /// Idempotent.
  void detachFromStack();
  bool isDetached() const { return detached_; }

  // -- Fea: XORP programs the Click FIB here -----------------------------------

  void routeAdded(const xorp::RibRoute& route) override;
  void routeRemoved(const xorp::RibRoute& route) override;

  // -- Roles ---------------------------------------------------------------------

  /// Make this node an external egress: it advertises a default route
  /// into the IGP and NATs external traffic out (Section 4.2.3).
  void setExternalEgress();
  bool isExternalEgress() const { return external_egress_; }

  /// Advertise a locally-attached stub prefix (e.g. an OpenVPN client
  /// pool) and route it to a dedicated FIB port.  Returns the port.
  int attachStubPrefix(const packet::Prefix& prefix, click::Element& sink);

  // -- Failure injection (Section 5.2 mechanism) ---------------------------------

  /// Drop all tunnel traffic toward the given peer node.
  void blockTunnelTo(packet::IpAddress peer_node_addr);
  void unblockTunnelTo(packet::IpAddress peer_node_addr);

  // -- Live migration (neighbor-side tunnel repair) ------------------------------

  /// Repoint the tunnel that reaches next-hop `vif_addr` (a virtual
  /// interface on a neighboring virtual node) at a new substrate
  /// address — the neighbor migrated.
  void remapTunnelPeer(packet::IpAddress vif_addr, packet::IpAddress node_addr);

  // -- Ingress (OpenVPN server hands decapsulated packets in) --------------------

  void injectIntoDataPlane(packet::Packet p);

  // -- Accessors -------------------------------------------------------------------

  core::VirtualNode& vnode() { return vnode_; }
  tcpip::HostStack& stack() { return stack_; }
  xorp::XorpInstance& xorp() { return *xorp_; }
  click::RouterGraph& graph() { return *graph_; }
  cpu::Process& clickProcess() { return *click_process_; }
  cpu::Process& xorpProcess() { return *xorp_process_; }
  tcpip::TunDevice& tapDevice() { return *tap_; }
  click::LookupIPRoute& fibElement() { return *rt_; }
  click::FromSocket& fromSocket() { return *from_; }
  click::Napt& napt() { return *napt_; }
  const IiasConfig& config() const { return config_; }
  std::string tapName() const;

 private:
  void buildGraph();
  void wireControlPlane();
  bool locallyAttachedConflict(const packet::Prefix& prefix) const;

  core::VirtualNode& vnode_;
  tcpip::HostStack& stack_;
  IiasConfig config_;
  cpu::Process* click_process_ = nullptr;
  cpu::Process* xorp_process_ = nullptr;
  tcpip::TunDevice* tap_ = nullptr;
  std::unique_ptr<click::RouterGraph> graph_;
  std::unique_ptr<xorp::XorpInstance> xorp_;

  // Typed element handles into the graph.
  click::FromSocket* from_ = nullptr;
  click::LocalDemux* demux_ = nullptr;
  click::UmlSwitch* uml_ = nullptr;
  click::LookupIPRoute* rt_ = nullptr;
  click::EncapTable* encap_ = nullptr;
  click::DropFilter* fail_ = nullptr;
  click::Napt* napt_ = nullptr;

  bool external_egress_ = false;
  bool detached_ = false;
  int next_fib_port_ = 3;  // 0 tunnels, 1 local, 2 external
  /// Prefixes bound directly to FIB ports here; RIB updates for these
  /// must not clobber the local binding.
  std::set<packet::Prefix> locally_attached_;
};

}  // namespace vini::overlay
