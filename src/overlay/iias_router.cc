#include "overlay/iias_router.h"

#include <sstream>
#include <stdexcept>

namespace vini::overlay {

IiasRouter::IiasRouter(core::VirtualNode& vnode, tcpip::HostStack& stack,
                       IiasConfig config)
    : vnode_(vnode), stack_(stack), config_(config) {
  core::Slice& slice = vnode_.slice();
  const core::ResourceSpec& res = slice.resources();

  // The slice's two user-space daemons, contending for this node's CPU.
  cpu::Scheduler& sched = vnode_.physNode().scheduler();
  cpu::ProcessConfig click_cfg;
  click_cfg.name = "click-" + slice.name();
  click_cfg.cpu_reservation = res.cpu_reservation;
  click_cfg.realtime = res.realtime;
  click_process_ = &sched.createProcess(click_cfg);
  cpu::ProcessConfig xorp_cfg;
  xorp_cfg.name = "xorp-" + slice.name();
  xorp_cfg.cpu_reservation = res.cpu_reservation;
  xorp_cfg.realtime = false;  // the paper boosts the Click process
  xorp_process_ = &sched.createProcess(xorp_cfg);

  // tap0: the slice's door between local applications and the overlay.
  tap_ = &stack_.createTunDevice(tapName(), vnode_.tapAddress());
  tcpip::Route tap_route;
  tap_route.prefix = slice.overlayPrefix();
  tap_route.device = tap_;
  tap_route.metric = 10;
  tap_route.proto = "connected";
  stack_.routingTable().addRoute(tap_route);

  buildGraph();

  // XORP, with the tap address doubling as the router id.
  xorp_ = std::make_unique<xorp::XorpInstance>(
      stack_.queue(), vnode_.tapAddress().value(), xorp_process_);
  if (config_.enable_ospf) {
    auto& ospf = xorp_->enableOspf(config_.ospf);
    ospf.addStubPrefix(packet::Prefix(vnode_.tapAddress(), 32), 0);
  }
  if (config_.enable_rip) {
    auto& rip = xorp_->enableRip(config_.rip);
    rip.addLocalPrefix(packet::Prefix(vnode_.tapAddress(), 32));
  }

  wireControlPlane();

  // Register the interfaces that already exist on the virtual node.
  // (IiasNetwork builds routers after the topology is embedded.)
  demux_->addLocalAddress(vnode_.tapAddress());
  for (const auto& iface : vnode_.interfaces()) {
    demux_->addLocalAddress(iface->address());
    stack_.addLocalAddress(iface->address());
    encap_->addMapping(iface->peerAddress(),
                       iface->link().peerOf(vnode_).physNode().address(),
                       slice.tunnelPort());
  }

  // FEA: RIB winners program the Click FIB (replays existing routes).
  xorp_->rib().setFea(this);
}

IiasRouter::~IiasRouter() {
  if (xorp_) xorp_->rib().setFea(nullptr);
}

std::string IiasRouter::tapName() const {
  return "tap-" + vnode_.slice().name();
}

void IiasRouter::buildGraph() {
  click::ClickContext context;
  context.stack = &stack_;
  context.process = click_process_;
  context.queue = &stack_.queue();
  context.costs = config_.costs;
  context.slice_id = vnode_.slice().id();
  graph_ = std::make_unique<click::RouterGraph>(context);

  const core::Slice& slice = vnode_.slice();
  std::ostringstream cfg;
  cfg << "// IIAS router for " << vnode_.name() << " (slice " << slice.name()
      << ")\n"
      << "from :: FromSocket(" << slice.tunnelPort() << ");\n"
      << "tosock :: ToSocket(" << slice.tunnelPort() << ");\n"
      << "tapin :: TapIn(" << tapName() << ");\n"
      << "tapout :: TapOut(" << tapName() << ");\n"
      << "uml :: UmlSwitch();\n"
      << "demux :: LocalDemux();\n"
      << "ttl :: DecIpTtl();\n"
      << "rt :: LookupIPRoute();\n"
      << "encap :: EncapTable();\n"
      << "fail :: DropFilter();\n"
      << "napt :: Napt(" << stack_.address().str() << ");\n"
      << "icmperr :: IcmpTimeExceeded(" << vnode_.tapAddress().str() << ");\n"
      << "from -> demux;\n"
      << "demux [0] -> uml;\n"
      << "demux [1] -> tapout;\n"
      << "demux [2] -> ttl -> rt;\n"
      << "ttl [1] -> icmperr -> rt;\n"
      << "uml -> rt;\n"
      << "tapin -> rt;\n"
      << "rt [0] -> encap -> fail;\n"
      << "rt [1] -> tapout;\n"
      << "rt [2] -> napt -> rt;\n";
  const double shape_bps = slice.resources().link_bandwidth_bps;
  if (shape_bps > 0) {
    cfg << "shaper :: Shaper(" << shape_bps << ", "
        << static_cast<std::size_t>(shape_bps / 8 / 20) << ");\n"
        << "fail -> shaper -> tosock;\n";
  } else {
    cfg << "fail -> tosock;\n";
  }
  graph_->parseConfig(cfg.str());

  from_ = graph_->get<click::FromSocket>("from");
  demux_ = graph_->get<click::LocalDemux>("demux");
  uml_ = graph_->get<click::UmlSwitch>("uml");
  rt_ = graph_->get<click::LookupIPRoute>("rt");
  encap_ = graph_->get<click::EncapTable>("encap");
  fail_ = graph_->get<click::DropFilter>("fail");
  napt_ = graph_->get<click::Napt>("napt");

  if (config_.socket_buffer > 0) {
    stack_.udpSocket(slice.tunnelPort())->setBuffered(config_.socket_buffer);
  }
}

void IiasRouter::wireControlPlane() {
  // XORP -> Click: virtual interface transmissions enter the data plane
  // through the uml_switch.
  uml_->setUpcall([this](packet::Packet p) {
    // Click -> XORP: find the interface this control packet addresses.
    core::VirtualInterface* vif = vnode_.interfaceByAddress(p.ip.dst);
    if (!vif) return;
    xorp_->receiveControl(*vif, p);
  });
  vnode_.setControlTx([this](packet::Packet p) { uml_->injectFromUml(std::move(p)); });
}

void IiasRouter::registerVifs(
    const std::map<const core::VirtualLink*, std::uint32_t>& link_costs) {
  for (const auto& iface : vnode_.interfaces()) {
    std::uint32_t cost = 1;
    if (auto it = link_costs.find(&iface->link()); it != link_costs.end()) {
      cost = it->second;
    }
    xorp_->registerVif(*iface, cost, config_.enable_rip);
  }
}

void IiasRouter::start() { xorp_->start(); }

void IiasRouter::stop() { xorp_->stop(); }

void IiasRouter::detachFromStack() {
  if (detached_) return;
  detached_ = true;
  // The FEA first: RIB withdrawals on the dying instance must not touch
  // the (retired) FIB anymore.
  xorp_->rib().setFea(nullptr);
  // Tunnel endpoint: the replacement router owns the slice's tunnel
  // port on *its* stack; this stack stops answering it.
  stack_.closeUdp(vnode_.slice().tunnelPort());
  // tap0 and every route through it (the overlay prefix route among
  // them), plus the interface addresses the stack answered for.
  stack_.removeTunDevice(tapName());
  tap_ = nullptr;
  for (const auto& iface : vnode_.interfaces()) {
    stack_.removeLocalAddress(iface->address());
  }
}

void IiasRouter::routeAdded(const xorp::RibRoute& route) {
  if (locallyAttachedConflict(route.prefix)) return;
  click::FibEntry entry;
  entry.prefix = route.prefix;
  const bool external = route.origin == xorp::RouteOrigin::kEbgp ||
                        route.origin == xorp::RouteOrigin::kIbgp;
  if (external && external_egress_) {
    // A BGP-learned Internet prefix on the egress node: traffic leaves
    // the overlay through the NAPT, not a tunnel (Section 3.3).
    entry.next_hop = {};
    entry.port = 2;
  } else {
    entry.next_hop = route.next_hop;  // zero = use packet destination
    entry.port = 0;                   // IGP-learned: exits via tunnels
  }
  rt_->fib().addRoute(entry);
}

void IiasRouter::routeRemoved(const xorp::RibRoute& route) {
  if (locallyAttachedConflict(route.prefix)) return;
  rt_->fib().removeRoute(route.prefix);
}

void IiasRouter::setExternalEgress() {
  if (external_egress_) return;
  external_egress_ = true;
  click::FibEntry entry;
  entry.prefix = packet::Prefix::defaultRoute();
  entry.port = 2;  // NAPT
  rt_->fib().addRoute(entry);
  locally_attached_.insert(entry.prefix);
  if (xorp_->ospf()) xorp_->ospf()->addStubPrefix(entry.prefix, 0);
  if (xorp_->rip()) xorp_->rip()->addLocalPrefix(entry.prefix);
}

int IiasRouter::attachStubPrefix(const packet::Prefix& prefix,
                                 click::Element& sink) {
  const int port = next_fib_port_++;
  rt_->connectOutput(port, sink, 0);
  click::FibEntry entry;
  entry.prefix = prefix;
  entry.port = port;
  rt_->fib().addRoute(entry);
  locally_attached_.insert(prefix);
  if (xorp_->ospf()) xorp_->ospf()->addStubPrefix(prefix, 0);
  if (xorp_->rip()) xorp_->rip()->addLocalPrefix(prefix);
  return port;
}

void IiasRouter::blockTunnelTo(packet::IpAddress peer_node_addr) {
  fail_->block(peer_node_addr);
}

void IiasRouter::unblockTunnelTo(packet::IpAddress peer_node_addr) {
  fail_->unblock(peer_node_addr);
}

void IiasRouter::remapTunnelPeer(packet::IpAddress vif_addr,
                                 packet::IpAddress node_addr) {
  encap_->addMapping(vif_addr, node_addr, vnode_.slice().tunnelPort());
}

void IiasRouter::injectIntoDataPlane(packet::Packet p) {
  const sim::Duration cost = config_.costs.cost(p.ipPacketBytes());
  click_process_->execute(cost, [this, p = std::move(p)]() mutable {
    rt_->push(0, std::move(p));
  });
}

bool IiasRouter::locallyAttachedConflict(const packet::Prefix& prefix) const {
  return locally_attached_.count(prefix) != 0;
}

}  // namespace vini::overlay
