#include "overlay/iias.h"

#include <stdexcept>

namespace vini::overlay {

IiasNetwork::IiasNetwork(core::Embedding embedding, tcpip::StackManager& stacks,
                         IiasConfig config)
    : embedding_(std::move(embedding)), stacks_(stacks), config_(config) {
  core::Slice& slice = *embedding_.slice;
  for (const auto& vnode : slice.nodes()) {
    tcpip::HostStack& stack = stacks_.ensure(vnode->physNode());
    auto router = std::make_unique<IiasRouter>(*vnode, stack, config_);
    router->registerVifs(embedding_.link_costs);
    by_name_[vnode->name()] = router.get();
    routers_.push_back(std::move(router));
  }
  // Fate sharing: when the VINI layer takes a virtual link down (an
  // underlay failure in expose mode), its tunnels stop carrying packets.
  for (const auto& link : slice.links()) {
    link->subscribe([this](core::VirtualLink& l, bool up) {
      applyLinkState(l, up);
    });
  }
}

IiasNetwork::~IiasNetwork() = default;

void IiasNetwork::start() {
  for (auto& router : routers_) router->start();
}

void IiasNetwork::stop() {
  for (auto& router : routers_) router->stop();
}

IiasRouter* IiasNetwork::router(const std::string& vnode_name) {
  auto it = by_name_.find(vnode_name);
  return it == by_name_.end() ? nullptr : it->second;
}

std::unique_ptr<IiasRouter> IiasNetwork::rehomeRouter(
    const std::string& vnode_name, packet::IpAddress previous_node_addr) {
  IiasRouter* old_router = router(vnode_name);
  if (!old_router) {
    throw std::runtime_error("rehomeRouter: no router for " + vnode_name);
  }
  core::VirtualNode& vnode = old_router->vnode();
  // Detach before the replacement is built: if the destination is the
  // node's original home (a rollback, or a migration back), both
  // routers share a stack and the tap/tunnel endpoints must not clash.
  old_router->detachFromStack();

  tcpip::HostStack& stack = stacks_.ensure(vnode.physNode());
  auto fresh = std::make_unique<IiasRouter>(vnode, stack, config_);
  fresh->registerVifs(embedding_.link_costs);

  std::unique_ptr<IiasRouter> retired;
  for (auto& slot : routers_) {
    if (slot.get() == old_router) {
      retired = std::move(slot);
      slot = std::move(fresh);
      by_name_[vnode_name] = slot.get();
      break;
    }
  }

  // Neighbors still tunnel toward the old substrate address: repoint
  // them, flush drop-filter state keyed by the old address, and re-apply
  // the current virtual-link state against the new one.
  const packet::IpAddress new_addr = vnode.physNode().address();
  for (const auto& iface : vnode.interfaces()) {
    IiasRouter* neighbor = router(iface->link().peerOf(vnode).name());
    if (!neighbor) continue;
    neighbor->remapTunnelPeer(iface->address(), new_addr);
    neighbor->unblockTunnelTo(previous_node_addr);
  }
  for (const auto& link : slice().links()) {
    if (&link->nodeA() != &vnode && &link->nodeB() != &vnode) continue;
    applyLinkState(*link, link->isUp());
  }
  return retired;
}

void IiasNetwork::applyLinkState(core::VirtualLink& link, bool up) {
  IiasRouter* ra = router(link.nodeA().name());
  IiasRouter* rb = router(link.nodeB().name());
  if (!ra || !rb) return;
  const packet::IpAddress addr_a = link.nodeA().physNode().address();
  const packet::IpAddress addr_b = link.nodeB().physNode().address();
  if (up) {
    ra->unblockTunnelTo(addr_b);
    rb->unblockTunnelTo(addr_a);
  } else {
    ra->blockTunnelTo(addr_b);
    rb->blockTunnelTo(addr_a);
  }
}

void IiasNetwork::failLink(const std::string& a, const std::string& b) {
  core::VirtualLink* link = slice().linkBetween(a, b);
  if (!link) throw std::runtime_error("no virtual link " + a + "-" + b);
  applyLinkState(*link, false);
}

void IiasNetwork::restoreLink(const std::string& a, const std::string& b) {
  core::VirtualLink* link = slice().linkBetween(a, b);
  if (!link) throw std::runtime_error("no virtual link " + a + "-" + b);
  // Only restore if the VINI layer agrees the link is healthy.
  if (link->isUp()) applyLinkState(*link, true);
}

void IiasNetwork::enableUpcallFailover(core::Vini& vini) {
  vini.upcalls().subscribe(slice().id(), [this](const core::UpcallEvent& event) {
    if (event.type != core::UpcallEvent::Type::kVirtualLinkDown) return;
    if (event.virtual_link_id < 0 ||
        static_cast<std::size_t>(event.virtual_link_id) >=
            slice().links().size()) {
      return;
    }
    core::VirtualLink& link =
        *slice().links()[static_cast<std::size_t>(event.virtual_link_id)];
    for (core::VirtualNode* node : {&link.nodeA(), &link.nodeB()}) {
      IiasRouter* r = router(node->name());
      if (!r) continue;
      core::VirtualInterface* vif = node->interfaceOnLink(link);
      if (vif && r->xorp().ospf()) r->xorp().ospf()->notifyInterfaceDown(*vif);
    }
  });
}

bool IiasNetwork::allAdjacent() const {
  for (const auto& router : routers_) {
    const auto* ospf = router->xorp().ospf();
    if (!ospf) continue;
    for (const auto& iface : router->vnode().interfaces()) {
      if (!iface->isUp()) continue;
      if (ospf->neighborState(*iface) != xorp::NeighborState::kFull) return false;
    }
  }
  return true;
}

std::size_t IiasNetwork::totalOspfRoutes() const {
  std::size_t n = 0;
  for (const auto& router : routers_) {
    n += router->xorp().rib().winners().size();
  }
  return n;
}

}  // namespace vini::overlay
