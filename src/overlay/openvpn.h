// OpenVPN-style ingress (Section 4.2.3).
//
// End hosts "opt in" to an IIAS instance by connecting an OpenVPN client
// that diverts their traffic to a server running on a designated ingress
// node.  The client creates a TUN device, routes traffic into it, and
// tunnels packets (with OpenVPN framing overhead) over UDP to the
// server; the server decapsulates and hands them to the local Click
// process.  Return traffic toward the client pool is routed across the
// overlay to the ingress node (the server advertises the pool into the
// IGP) and tunneled back down to the right client.
//
// Two connection paths exist.  connect() is the original synchronous
// handshake (fine when the server is known reachable).  connectAsync()
// runs the handshake over the actual network with a timeout, keeps the
// session alive with keepalives, detects a dead server via a peer
// timeout, and reconnects with exponential backoff + jitter — so when
// the ingress node crashes, opted-in hosts degrade gracefully and
// re-attach once it returns instead of silently blackholing.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "overlay/iias_router.h"
#include "sim/random.h"
#include "tcpip/host_stack.h"

namespace vini::overlay {

inline constexpr std::uint16_t kOpenVpnPort = 1194;

/// Control-channel message (session handshake and liveness probing).
struct OpenVpnControl final : packet::AppPayload {
  enum Kind { kSessionRequest, kSessionGrant, kKeepalive, kKeepaliveAck };
  Kind kind = kSessionRequest;
  std::uint32_t session_id = 0;
  /// kSessionGrant: the allocated overlay address (zero = refused).
  packet::IpAddress overlay_addr;

  std::size_t sizeBytes() const override { return 16; }
  std::string describe() const override { return "openvpn-control"; }
};

class OpenVpnClient;

/// One client's address lease, in checkpoint-serializable form.
struct OpenVpnLease {
  packet::IpAddress real_addr;
  std::uint16_t real_port = 0;
  packet::IpAddress overlay_addr;
  std::uint32_t session_id = 0;
};

class OpenVpnServer {
 public:
  /// Attach a server to an ingress router.  `client_pool` is the overlay
  /// prefix handed out to clients (advertised into the IGP as a stub).
  OpenVpnServer(IiasRouter& router, packet::Prefix client_pool);
  ~OpenVpnServer();

  OpenVpnServer(const OpenVpnServer&) = delete;
  OpenVpnServer& operator=(const OpenVpnServer&) = delete;

  packet::IpAddress serverAddress() const { return router_->stack().address(); }
  packet::Prefix clientPool() const { return pool_; }
  std::size_t sessionCount() const { return by_source_.size(); }
  std::uint64_t ingressPackets() const { return ingress_packets_; }
  std::uint64_t egressPackets() const { return egress_element_->count(); }

  // -- Live migration ----------------------------------------------------------

  /// Snapshot every lease (sorted by client real address) plus the pool
  /// allocation cursor, for the router checkpoint.
  std::vector<OpenVpnLease> exportLeases() const;
  std::uint32_t nextHost() const { return next_host_; }

  /// Replace the lease table wholesale (checkpoint restore / rollback).
  void restoreLeases(const std::vector<OpenVpnLease>& leases,
                     std::uint32_t next_host);

  /// Move the ingress onto another router (the original migrated): close
  /// the OpenVPN port on the old stack, re-advertise the pool from the
  /// new router, and start answering on its stack.  Leases survive.
  /// Clients must rehome() — the server's public address changed.
  void attachTo(IiasRouter& router);

  /// The router currently hosting this ingress (migration bookkeeping).
  const IiasRouter* attachedRouter() const { return router_; }

 private:
  friend class OpenVpnClient;

  /// The control-channel handshake: allocate an overlay address for a
  /// client at (real_addr, real_port).  Returns zero when the pool is
  /// exhausted.  A returning client keeps its lease.
  packet::IpAddress openSession(packet::IpAddress real_addr,
                                std::uint16_t real_port,
                                std::uint32_t session_id);

  void onDatagram(packet::Packet p);
  void handleControl(const packet::Packet& p, const OpenVpnControl& msg);

  /// Click element that carries overlay packets back down to clients.
  class EgressElement final : public click::Element {
   public:
    explicit EgressElement(OpenVpnServer& server) : server_(server) {}
    std::string className() const override { return "OpenVpnEgress"; }
    void push(int, packet::Packet p) override;
    std::uint64_t count() const { return count_; }

   private:
    OpenVpnServer& server_;
    std::uint64_t count_ = 0;
  };

  struct Session {
    packet::IpAddress real_addr;
    std::uint16_t real_port = 0;
    packet::IpAddress overlay_addr;
    std::uint32_t session_id = 0;
  };

  void sendToClient(const Session& session, packet::Packet p);

  IiasRouter* router_;  ///< never null; repointed by attachTo()
  packet::Prefix pool_;
  std::uint32_t next_host_ = 10;
  std::map<packet::IpAddress, Session> by_source_;   ///< by client real addr
  std::map<packet::IpAddress, Session> by_overlay_;  ///< by assigned addr
  std::unique_ptr<EgressElement> egress_element_;
  std::uint64_t ingress_packets_ = 0;
};

/// Retry/timeout/backoff policy for connectAsync().
struct OpenVpnReconnectConfig {
  sim::Duration handshake_timeout = 2 * sim::kSecond;
  sim::Duration keepalive_interval = 5 * sim::kSecond;
  /// No keepalive-ack for this long = the server (or the path) is dead.
  sim::Duration peer_timeout = 15 * sim::kSecond;
  sim::Duration initial_backoff = sim::kSecond;
  double multiplier = 2.0;
  sim::Duration max_backoff = 30 * sim::kSecond;
  /// Relative jitter on each backoff delay, in [1 - jitter, 1 + jitter].
  double jitter = 0.25;
  /// Mixed with the substrate seed and the client's name into the
  /// per-client jitter stream, so co-located clients never share a
  /// backoff schedule yet every same-seed run replays identically.
  std::uint64_t seed = 1;
};

class OpenVpnClient {
 public:
  /// Create a client on an end host's stack, pointed at a server.
  OpenVpnClient(tcpip::HostStack& stack, std::string name);
  ~OpenVpnClient();

  OpenVpnClient(const OpenVpnClient&) = delete;
  OpenVpnClient& operator=(const OpenVpnClient&) = delete;

  /// Perform the handshake with `server` and plumb the TUN device plus
  /// routes: the overlay prefix and the default route are diverted into
  /// the tunnel; a host route pins the server's real address to the
  /// underlay.  Returns false if the server refused (pool exhausted).
  bool connect(OpenVpnServer& server);

  /// Network-driven handshake with supervision: retries with backoff
  /// until the server answers, then keeps the session alive and
  /// reconnects automatically if the server stops answering.
  void connectAsync(OpenVpnServer& server, OpenVpnReconnectConfig config = {});

  /// Follow a migrated server to its new substrate address: repin the
  /// host route and aim handshakes/keepalives at the new home.  The
  /// lease (keyed server-side by this client's real address) survives,
  /// so an established session continues without a new handshake.
  void rehome(OpenVpnServer& server);

  /// The overlay address assigned by the server (zero before connect).
  packet::IpAddress overlayAddress() const { return overlay_addr_; }
  bool connected() const { return connected_; }
  std::uint64_t sent() const { return sent_; }
  std::uint64_t received() const { return received_; }
  /// Handshake requests sent (first connect and every retry).
  std::uint64_t handshakeAttempts() const { return handshake_attempts_; }
  /// Sessions re-established after a detected loss.
  std::uint64_t reconnects() const { return reconnects_; }

 private:
  void onTunPacket(packet::Packet p);
  void onDatagram(packet::Packet p);
  void attemptHandshake();
  void onSessionGrant(const OpenVpnControl& msg);
  void onPeerDead();
  void scheduleRetry();
  void plumbTunnel();
  void ensureSocket();

  tcpip::HostStack& stack_;
  std::string name_;
  std::int16_t span_layer_ = -1;
  std::int16_t span_node_ = -1;
  tcpip::TunDevice* tun_ = nullptr;
  tcpip::UdpSocket* socket_ = nullptr;
  packet::IpAddress server_addr_;
  packet::IpAddress overlay_addr_;
  std::uint32_t session_id_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;

  // Supervised-session state (connectAsync).
  OpenVpnReconnectConfig config_;
  std::unique_ptr<sim::Random> random_;
  bool supervised_ = false;
  bool connected_ = false;
  std::uint64_t handshake_attempts_ = 0;
  std::uint64_t reconnects_ = 0;
  bool ever_connected_ = false;
  int consecutive_failures_ = 0;
  std::unique_ptr<sim::OneShotTimer> handshake_timer_;
  std::unique_ptr<sim::OneShotTimer> retry_timer_;
  std::unique_ptr<sim::OneShotTimer> dead_timer_;
  std::unique_ptr<sim::PeriodicTimer> keepalive_timer_;
};

}  // namespace vini::overlay
